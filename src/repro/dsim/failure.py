"""Fault injection: the faults FixD is supposed to detect and recover from.

A :class:`FailurePlan` is a declarative description of everything that
will go wrong during a run: process crashes (with optional recovery),
targeted message faults, network partitions and state corruption.  The
cluster materialises the plan into scheduler events before the run
starts, so injected faults are part of the deterministic schedule and are
therefore reproducible and replayable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.dsim.message import Message
from repro.dsim.network import Partition


@dataclass(frozen=True)
class CrashFault:
    """Crash process ``pid`` at time ``at``; optionally recover it later.

    A crashed process stops executing handlers and all its pending
    deliveries and timers are cancelled.  If ``recover_at`` is given the
    process is restarted at that time, either from its initial state
    (``recover_from_checkpoint=False``) or from its most recent local
    checkpoint if a checkpoint hook is installed.
    """

    pid: str
    at: float
    recover_at: Optional[float] = None
    recover_from_checkpoint: bool = True

    def __post_init__(self) -> None:
        if self.recover_at is not None and self.recover_at <= self.at:
            raise ValueError("recovery must happen strictly after the crash")


@dataclass(frozen=True)
class MessageFault:
    """Drop, duplicate or delay messages matching a predicate.

    ``kind`` selects the fault flavour (``"drop"``, ``"duplicate"`` or
    ``"delay"``); ``match_kind``/``match_src``/``match_dst`` narrow which
    messages are affected; ``count`` bounds how many matching messages
    are hit (``None`` means all of them); ``extra_delay`` applies to the
    ``"delay"`` flavour.
    """

    kind: str
    match_kind: Optional[str] = None
    match_src: Optional[str] = None
    match_dst: Optional[str] = None
    count: Optional[int] = None
    extra_delay: float = 0.0
    after: float = 0.0

    _VALID = ("drop", "duplicate", "delay")

    def __post_init__(self) -> None:
        if self.kind not in self._VALID:
            raise ValueError(f"message fault kind must be one of {self._VALID}, got {self.kind!r}")
        if self.kind == "delay" and self.extra_delay <= 0:
            raise ValueError("delay faults need a positive extra_delay")

    def matches(self, message: Message, time: float) -> bool:
        """True when this fault applies to ``message`` sent at ``time``."""
        if time < self.after:
            return False
        if self.match_kind is not None and message.kind != self.match_kind:
            return False
        if self.match_src is not None and message.src != self.match_src:
            return False
        if self.match_dst is not None and message.dst != self.match_dst:
            return False
        return True


@dataclass(frozen=True)
class PartitionFault:
    """Partition the network into ``groups`` during ``[start, end)``."""

    groups: Sequence[Sequence[str]]
    start: float
    end: float

    def to_partition(self) -> Partition:
        return Partition(self.groups, self.start, self.end)


@dataclass(frozen=True)
class StateCorruptionFault:
    """Apply ``mutator`` to the local state of ``pid`` at time ``at``.

    This models the "software bug" class of faults — the state silently
    becomes wrong and only an invariant check can notice.  The mutator
    receives the process's state dictionary and mutates it in place.
    """

    pid: str
    at: float
    mutator: Callable[[Dict], None]
    description: str = "state corruption"


@dataclass
class FailurePlan:
    """The complete set of faults injected into one run."""

    crashes: List[CrashFault] = field(default_factory=list)
    message_faults: List[MessageFault] = field(default_factory=list)
    partitions: List[PartitionFault] = field(default_factory=list)
    corruptions: List[StateCorruptionFault] = field(default_factory=list)

    def add(self, fault) -> "FailurePlan":
        """Add any fault object to the plan (fluent style)."""
        if isinstance(fault, CrashFault):
            self.crashes.append(fault)
        elif isinstance(fault, MessageFault):
            self.message_faults.append(fault)
        elif isinstance(fault, PartitionFault):
            self.partitions.append(fault)
        elif isinstance(fault, StateCorruptionFault):
            self.corruptions.append(fault)
        else:
            raise TypeError(f"unsupported fault type: {type(fault).__name__}")
        return self

    def is_empty(self) -> bool:
        return not (self.crashes or self.message_faults or self.partitions or self.corruptions)

    def summary(self) -> Dict[str, int]:
        """Counts per fault category, for reports."""
        return {
            "crashes": len(self.crashes),
            "message_faults": len(self.message_faults),
            "partitions": len(self.partitions),
            "corruptions": len(self.corruptions),
        }


class MessageFaultEngine:
    """Applies :class:`MessageFault` rules to outgoing messages.

    The engine is consulted by the cluster before a message is handed to
    the network; it tracks per-rule hit counts so bounded faults stop
    firing once exhausted.
    """

    def __init__(self, faults: Sequence[MessageFault]) -> None:
        self._faults = list(faults)
        self._hits: Dict[int, int] = {index: 0 for index in range(len(self._faults))}

    def decide(self, message: Message, time: float) -> Optional[MessageFault]:
        """Return the first applicable fault for ``message``, if any."""
        for index, fault in enumerate(self._faults):
            if fault.count is not None and self._hits[index] >= fault.count:
                continue
            if fault.matches(message, time):
                self._hits[index] += 1
                return fault
        return None

    def hit_counts(self) -> Dict[int, int]:
        """Per-rule hit counters (rule index -> hits)."""
        return dict(self._hits)

    def restore_hits(self, counts: Dict[int, int]) -> None:
        """Re-arm the counters from persisted hit counts (continuation).

        A resumed run rebuilds this engine from the scenario's fault
        schedule, which resets every counter to zero; restoring the
        persisted counts keeps count-limited rules at their remaining
        budget instead of firing all over again.  Keys may arrive as
        strings (JSON round-trip); unknown rule indices are ignored —
        the schedule is authoritative for which rules exist.
        """
        for index, hits in counts.items():
            index = int(index)
            if index in self._hits:
                self._hits[index] = max(self._hits[index], int(hits))
