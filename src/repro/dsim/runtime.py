"""Generic runtime hooks built on the simulator's hook interface.

These hooks have no dependency on the FixD components; they provide the
reusable observation machinery that the Scroll recorder, checkpoint
policies and fault detector specialise:

* :class:`TraceHook` — collects a flat, timestamped list of every
  observable action (the raw material for bug reports).
* :class:`StatsHook` — per-process counters (messages, timers, random
  draws, crashes), used by benchmarks to quantify overhead.
* :class:`PeriodicActionHook` — invokes a callback every N completed
  handlers of a process; the uncoordinated/periodic checkpoint policy is
  a one-line specialisation.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.dsim.hooks import RuntimeHook
from repro.dsim.message import Message


@dataclass
class ActionRecord:
    """One observed action, in a shape shared by traces and reports."""

    time: float
    pid: str
    category: str
    detail: str
    payload: Any = None


class TraceHook(RuntimeHook):
    """Collects every notification into a flat list of :class:`ActionRecord`."""

    def __init__(self) -> None:
        self.records: List[ActionRecord] = []

    def _add(self, time: float, pid: str, category: str, detail: str, payload: Any = None) -> None:
        self.records.append(ActionRecord(time, pid, category, detail, payload))

    def on_send(self, pid, message, time, vt=None):
        self._add(time, pid, "send", message.describe(), message)

    def on_receive(self, pid, message, time, vt=None):
        self._add(time, pid, "receive", message.describe(), message)

    def on_drop(self, message, time, vt=None):
        self._add(time, message.src, "drop", message.describe(), message)

    def on_duplicate(self, message, time, vt=None):
        self._add(time, message.src, "duplicate", message.describe(), message)

    def on_timer(self, pid, name, time, vt=None, payload=None):
        self._add(time, pid, "timer", name)

    def on_random(self, pid, method, value, time, vt=None):
        self._add(time, pid, "random", f"{method}={value!r}")

    def on_crash(self, pid, time, vt=None):
        self._add(time, pid, "crash", "process crashed")

    def on_recover(self, pid, time, vt=None):
        self._add(time, pid, "recover", "process recovered")

    def on_corruption(self, pid, description, time, vt=None):
        self._add(time, pid, "corruption", description)

    def on_invariant_violation(self, pid, name, detail, time, vt=None):
        self._add(time, pid, "violation", f"{name}: {detail}")
        return None

    def by_process(self) -> Dict[str, List[ActionRecord]]:
        """Group the trace per process id."""
        grouped: Dict[str, List[ActionRecord]] = defaultdict(list)
        for record in self.records:
            grouped[record.pid].append(record)
        return dict(grouped)

    def by_category(self, category: str) -> List[ActionRecord]:
        """All records of one category, in time order."""
        return [record for record in self.records if record.category == category]


class StatsHook(RuntimeHook):
    """Per-process counters of observable activity."""

    def __init__(self) -> None:
        self.sent: Dict[str, int] = defaultdict(int)
        self.received: Dict[str, int] = defaultdict(int)
        self.dropped: int = 0
        self.duplicated: int = 0
        self.timers: Dict[str, int] = defaultdict(int)
        self.random_draws: Dict[str, int] = defaultdict(int)
        self.crashes: Dict[str, int] = defaultdict(int)
        self.violations: Dict[str, int] = defaultdict(int)
        self.handlers: Dict[str, int] = defaultdict(int)

    def on_send(self, pid, message, time, vt=None):
        self.sent[pid] += 1

    def on_receive(self, pid, message, time, vt=None):
        self.received[pid] += 1

    def on_drop(self, message, time, vt=None):
        self.dropped += 1

    def on_duplicate(self, message, time, vt=None):
        self.duplicated += 1

    def on_timer(self, pid, name, time, vt=None, payload=None):
        self.timers[pid] += 1

    def on_random(self, pid, method, value, time, vt=None):
        self.random_draws[pid] += 1

    def on_crash(self, pid, time, vt=None):
        self.crashes[pid] += 1

    def on_invariant_violation(self, pid, name, detail, time, vt=None):
        self.violations[pid] += 1
        return None

    def after_handler(self, pid, description, time):
        self.handlers[pid] += 1

    def totals(self) -> Dict[str, int]:
        """Aggregate counters over all processes."""
        return {
            "sent": sum(self.sent.values()),
            "received": sum(self.received.values()),
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "timers": sum(self.timers.values()),
            "random_draws": sum(self.random_draws.values()),
            "crashes": sum(self.crashes.values()),
            "violations": sum(self.violations.values()),
            "handlers": sum(self.handlers.values()),
        }


class PeriodicActionHook(RuntimeHook):
    """Invoke ``action(pid, time)`` every ``period`` completed handlers of a process.

    The uncoordinated (periodic) checkpoint policy of the Time Machine is
    implemented by passing a callback that captures a local checkpoint.
    """

    def __init__(self, period: int, action: Callable[[str, float], None]) -> None:
        if period <= 0:
            raise ValueError("period must be a positive number of handler completions")
        self.period = period
        self.action = action
        self._counts: Dict[str, int] = defaultdict(int)

    def after_handler(self, pid, description, time):
        self._counts[pid] += 1
        if self._counts[pid] % self.period == 0:
            self.action(pid, time)


class LatencyProbeHook(RuntimeHook):
    """Measures message latency (delivery time minus send time) per channel."""

    def __init__(self) -> None:
        self._send_times: Dict[int, float] = {}
        self.latencies: Dict[tuple, List[float]] = defaultdict(list)

    def on_send(self, pid, message: Message, time, vt=None):
        self._send_times[message.msg_id] = time

    def on_receive(self, pid, message: Message, time, vt=None):
        sent = self._send_times.pop(message.msg_id, None)
        if sent is not None:
            self.latencies[(message.src, message.dst)].append(time - sent)

    def mean_latency(self) -> Optional[float]:
        """Mean latency over all delivered messages, or None if nothing delivered."""
        values = [value for series in self.latencies.values() for value in series]
        if not values:
            return None
        return sum(values) / len(values)
