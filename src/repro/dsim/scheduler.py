"""Deterministic discrete-event scheduler.

Every run of the simulator is a pure function of ``(programs, seed,
fault plan)``.  Determinism comes from three properties of this
scheduler:

1. events are ordered by ``(time, sequence number)`` where the sequence
   number is assigned at scheduling time, so ties are broken stably;
2. all randomness (delays, drops, application draws) flows through the
   seeded streams in :mod:`repro.dsim.rng`;
3. event execution never consults wall-clock time.

The Investigator relies on this: re-running a prefix of the schedule from
a checkpoint reproduces the original execution exactly, and exploring a
*different* schedule is an explicit, controlled perturbation.

Cancellation is *lazy*: cancelling an event only flips a flag and
adjusts the live-event counter; the heap is normally never rebuilt or
scanned.  Cancelled events are discarded when they surface at the heap
head (:meth:`Scheduler.peek_time` / :meth:`Scheduler.pop_next`), so
every scheduler operation is O(log n) or better.  Long runs with heavy
cancellation (crash storms, repeated rollbacks) would otherwise carry
dead events in the heap until they surface, so the scheduler *compacts*
— drops cancelled entries and re-heapifies — whenever dead entries
outnumber half the heap; the O(n) cost is amortized against the >= n/2
cancellations that triggered it, keeping the heap within a constant
factor of the live-event count:

* :meth:`Scheduler.peek_time` pops dead heads instead of sorting the
  whole queue;
* :attr:`Scheduler.pending_events` reads a counter maintained on
  push/cancel/pop instead of scanning;
* :meth:`Scheduler.cancel_for_target` walks a per-target index (crash
  and rollback handling cancels a single process's events, which used to
  scan every queued event in the system).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Iterator, List, Optional

from repro.errors import SimulationError


class EventKind(Enum):
    """The kinds of events the scheduler understands."""

    DELIVER = "deliver"          # a message arrives at its destination
    TIMER = "timer"              # a process timer fires
    CRASH = "crash"              # fault injection: process crash
    RECOVER = "recover"          # fault injection: process recovery
    CORRUPT = "corrupt"          # fault injection: state corruption
    CONTROL = "control"          # runtime-internal control action (checkpoint, probe)


@dataclass(order=True)
class Event:
    """A scheduled event.

    Ordering is by ``(time, seq)`` only; the payload fields are excluded
    from comparison so that events carrying unorderable payloads can
    still be queued.
    """

    time: float
    seq: int
    kind: EventKind = field(compare=False)
    target: str = field(compare=False)
    payload: Any = field(compare=False, default=None)
    cancelled: bool = field(compare=False, default=False)
    #: True while the event sits in the scheduler's heap; maintained by the
    #: scheduler so cancellation bookkeeping never double-counts an event.
    in_queue: bool = field(compare=False, default=False, repr=False)

    def describe(self) -> str:
        """One-line description used in traces."""
        return f"t={self.time:.3f} {self.kind.value} -> {self.target}"


class Scheduler:
    """A priority-queue scheduler with stable tie-breaking and lazy cancellation."""

    def __init__(self) -> None:
        self._queue: List[Event] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._executed = 0
        #: number of queued events that are not cancelled (kept exact)
        self._live = 0
        #: queued events per target; pruned lazily, rebuilt when mostly dead
        self._by_target: Dict[str, List[Event]] = {}
        self._index_dead = 0
        #: cancelled events still sitting in the heap; compaction trigger
        self._heap_dead = 0

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def executed_events(self) -> int:
        """Number of events executed so far."""
        return self._executed

    @property
    def pending_events(self) -> int:
        """Number of live events still queued (cancelled events excluded)."""
        return self._live

    @property
    def heap_size(self) -> int:
        """Entries physically in the heap, live or dead (compaction bound)."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, kind: EventKind, target: str, payload: Any = None) -> Event:
        """Schedule an event ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay} time units in the past")
        return self.schedule_at(self._now + delay, kind, target, payload)

    def schedule_at(self, time: float, kind: EventKind, target: str, payload: Any = None) -> Event:
        """Schedule an event at an absolute simulation time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event at t={time} which is before now (t={self._now})"
            )
        event = Event(time=float(time), seq=next(self._sequence), kind=kind, target=target, payload=payload)
        event.in_queue = True
        heapq.heappush(self._queue, event)
        self._live += 1
        self._by_target.setdefault(target, []).append(event)
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (it will be skipped).

        Cancelling an event that already executed, or one that was
        already cancelled, is a no-op.
        """
        if event.cancelled or not event.in_queue:
            return
        event.cancelled = True
        self._live -= 1
        self._note_heap_dead()

    def cancel_for_target(self, target: str, kind: Optional[EventKind] = None) -> int:
        """Cancel all pending events for ``target`` (optionally of one kind).

        Used when a process crashes or is rolled back: its in-flight
        timers and deliveries no longer make sense.  Walks only the
        target's own index bucket, not the whole queue.
        Returns the number of events cancelled.
        """
        bucket = self._by_target.get(target)
        if not bucket:
            return 0
        cancelled = 0
        survivors: List[Event] = []
        for event in bucket:
            if not event.in_queue or event.cancelled:
                continue  # executed or already cancelled: drop from the index
            if kind is None or event.kind is kind:
                event.cancelled = True
                self._live -= 1
                cancelled += 1
            else:
                survivors.append(event)
        if survivors:
            self._by_target[target] = survivors
        else:
            del self._by_target[target]
        if cancelled:
            self._note_heap_dead(cancelled)
        return cancelled

    def _note_heap_dead(self, count: int = 1) -> None:
        """Track freshly cancelled heap entries; compact when mostly dead."""
        self._heap_dead += count
        if self._heap_dead > 64 and self._heap_dead * 2 > len(self._queue):
            self._compact_heap()

    def _compact_heap(self) -> None:
        """Drop cancelled entries from the heap and restore the heap invariant.

        O(n) in the heap size, amortized O(1) per cancellation because it
        only runs once dead entries exceed half the heap.  Keeps very
        long cancellation-heavy runs at O(live) memory instead of
        O(everything ever cancelled-but-unsurfaced).
        """
        survivors: List[Event] = []
        dropped = 0
        for event in self._queue:
            if event.cancelled:
                event.in_queue = False
                dropped += 1
            else:
                survivors.append(event)
        self._queue = survivors
        heapq.heapify(self._queue)
        self._heap_dead = 0
        if dropped:
            self._note_dead(dropped)  # one batched index-GC check, not one per event

    def _note_dead(self, count: int = 1) -> None:
        """Track events that left the heap but may linger in the target index."""
        self._index_dead += count
        if self._index_dead > max(64, 2 * self._live):
            self._rebuild_target_index()

    def _rebuild_target_index(self) -> None:
        rebuilt: Dict[str, List[Event]] = {}
        for event in self._queue:
            if event.in_queue and not event.cancelled:
                rebuilt.setdefault(event.target, []).append(event)
        self._by_target = rebuilt
        self._index_dead = 0

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def pop_next(self) -> Optional[Event]:
        """Pop and return the next non-cancelled event, advancing time.

        Returns ``None`` when the queue is exhausted.
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            event.in_queue = False
            self._note_dead()
            if event.cancelled:
                self._heap_dead -= 1
                continue
            if event.time < self._now:
                raise SimulationError("event queue produced an event from the past")
            self._live -= 1
            self._now = event.time
            self._executed += 1
            return event
        return None

    def pending(self, kind: Optional[EventKind] = None) -> List[Event]:
        """All non-cancelled queued events in execution order (optionally one kind)."""
        events = sorted(event for event in self._queue if not event.cancelled)
        if kind is not None:
            events = [event for event in events if event.kind is kind]
        return events

    def peek_time(self) -> Optional[float]:
        """Return the time of the next pending event without executing it.

        Lazily discards cancelled events that surfaced at the heap head,
        so the amortized cost is O(log n) rather than a full sort.
        """
        queue = self._queue
        while queue and queue[0].cancelled:
            event = heapq.heappop(queue)
            event.in_queue = False
            self._heap_dead -= 1
            self._note_dead()
        return queue[0].time if queue else None

    def drain(self, until: Optional[float] = None) -> Iterator[Event]:
        """Yield events in order until the queue empties or ``until`` is passed."""
        while True:
            next_time = self.peek_time()
            if next_time is None:
                return
            if until is not None and next_time > until:
                return
            event = self.pop_next()
            if event is None:
                return
            yield event

    def reset_to(self, time: float) -> None:
        """Discard all pending events and rewind the clock (used on global rollback)."""
        for event in self._queue:
            event.in_queue = False
        self._queue.clear()
        self._by_target.clear()
        self._live = 0
        self._index_dead = 0
        self._heap_dead = 0
        self._now = float(time)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Scheduler(now={self._now}, pending={self.pending_events})"
