"""Deterministic discrete-event scheduler.

Every run of the simulator is a pure function of ``(programs, seed,
fault plan)``.  Determinism comes from three properties of this
scheduler:

1. events are ordered by ``(time, sequence number)`` where the sequence
   number is assigned at scheduling time, so ties are broken stably;
2. all randomness (delays, drops, application draws) flows through the
   seeded streams in :mod:`repro.dsim.rng`;
3. event execution never consults wall-clock time.

The Investigator relies on this: re-running a prefix of the schedule from
a checkpoint reproduces the original execution exactly, and exploring a
*different* schedule is an explicit, controlled perturbation.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Iterator, List, Optional

from repro.errors import SimulationError


class EventKind(Enum):
    """The kinds of events the scheduler understands."""

    DELIVER = "deliver"          # a message arrives at its destination
    TIMER = "timer"              # a process timer fires
    CRASH = "crash"              # fault injection: process crash
    RECOVER = "recover"          # fault injection: process recovery
    CORRUPT = "corrupt"          # fault injection: state corruption
    CONTROL = "control"          # runtime-internal control action (checkpoint, probe)


@dataclass(order=True)
class Event:
    """A scheduled event.

    Ordering is by ``(time, seq)`` only; the payload fields are excluded
    from comparison so that events carrying unorderable payloads can
    still be queued.
    """

    time: float
    seq: int
    kind: EventKind = field(compare=False)
    target: str = field(compare=False)
    payload: Any = field(compare=False, default=None)
    cancelled: bool = field(compare=False, default=False)

    def describe(self) -> str:
        """One-line description used in traces."""
        return f"t={self.time:.3f} {self.kind.value} -> {self.target}"


class Scheduler:
    """A priority-queue scheduler with stable tie-breaking and cancellation."""

    def __init__(self) -> None:
        self._queue: List[Event] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._executed = 0

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def executed_events(self) -> int:
        """Number of events executed so far."""
        return self._executed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return sum(1 for event in self._queue if not event.cancelled)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, kind: EventKind, target: str, payload: Any = None) -> Event:
        """Schedule an event ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay} time units in the past")
        return self.schedule_at(self._now + delay, kind, target, payload)

    def schedule_at(self, time: float, kind: EventKind, target: str, payload: Any = None) -> Event:
        """Schedule an event at an absolute simulation time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event at t={time} which is before now (t={self._now})"
            )
        event = Event(time=float(time), seq=next(self._sequence), kind=kind, target=target, payload=payload)
        heapq.heappush(self._queue, event)
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (it will be skipped)."""
        event.cancelled = True

    def cancel_for_target(self, target: str, kind: Optional[EventKind] = None) -> int:
        """Cancel all pending events for ``target`` (optionally of one kind).

        Used when a process crashes or is rolled back: its in-flight
        timers and deliveries no longer make sense.
        Returns the number of events cancelled.
        """
        cancelled = 0
        for event in self._queue:
            if event.cancelled or event.target != target:
                continue
            if kind is not None and event.kind is not kind:
                continue
            event.cancelled = True
            cancelled += 1
        return cancelled

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def pop_next(self) -> Optional[Event]:
        """Pop and return the next non-cancelled event, advancing time.

        Returns ``None`` when the queue is exhausted.
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if event.time < self._now:
                raise SimulationError("event queue produced an event from the past")
            self._now = event.time
            self._executed += 1
            return event
        return None

    def pending(self, kind: Optional[EventKind] = None) -> List[Event]:
        """All non-cancelled queued events in execution order (optionally one kind)."""
        events = sorted(event for event in self._queue if not event.cancelled)
        if kind is not None:
            events = [event for event in events if event.kind is kind]
        return events

    def peek_time(self) -> Optional[float]:
        """Return the time of the next pending event without executing it."""
        for event in sorted(self._queue):
            if not event.cancelled:
                return event.time
        return None

    def drain(self, until: Optional[float] = None) -> Iterator[Event]:
        """Yield events in order until the queue empties or ``until`` is passed."""
        while True:
            next_time = self.peek_time()
            if next_time is None:
                return
            if until is not None and next_time > until:
                return
            event = self.pop_next()
            if event is None:
                return
            yield event

    def reset_to(self, time: float) -> None:
        """Discard all pending events and rewind the clock (used on global rollback)."""
        self._queue.clear()
        self._now = float(time)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Scheduler(now={self._now}, pending={self.pending_events})"
