"""Pluggable execution backends: one cluster API over two substrates.

The paper's FixD architecture assumes a single runtime substrate — a
cluster of communicating POSIX processes — underneath its detection,
reporting and recovery layers.  This module makes that substrate
pluggable.  :class:`~repro.dsim.cluster.Cluster` is a thin frontend
(process table, hooks, failure plan, violation policy); everything that
actually *executes* lives behind the :class:`Backend` protocol:

* :class:`SimBackend` — the deterministic discrete-event simulator
  (scheduler + network + channels), refactored out of the old
  monolithic ``Cluster``.  Fully deterministic, supports checkpointing,
  rollback and in-flight message control, which is why it is the
  substrate the Time Machine and the Investigator require.

* :class:`MPBackend` — the same :class:`~repro.dsim.process.Process`
  subclasses on real OS processes.  The parent routes messages between
  per-worker duplex pipes and **batches** them: a worker accumulates
  outgoing messages up to a *flush watermark* and ships them as one
  pickled pipe write; the parent groups each routing tick's deliveries
  per destination and writes one batch per worker.  Batches preserve
  per-sender FIFO order and every message carries its sender's vector
  timestamp, so recording hooks observe the same causal surface as on
  the simulator.  Fault plans map directly: crashes/recoveries become
  control messages, message faults and partitions are applied by the
  parent router, state corruptions fire inside the worker.

Capability flags tell the FixD layers what a backend can do, so e.g.
checkpoint/rollback machinery attaches only where it is meaningful.
"""

from __future__ import annotations

import heapq
import multiprocessing as mp
import pickle
import queue as queue_module
import sys
import threading
import time as wall_time
from dataclasses import dataclass
from multiprocessing.connection import wait as mp_wait
from typing import Any, Dict, List, Optional, Tuple

from repro.dsim.channel import DeliveryOutcome
from repro.dsim.failure import MessageFaultEngine, StateCorruptionFault
from repro.dsim.message import Message
from repro.dsim.network import Network
from repro.dsim.process import ProcessContext
from repro.dsim.rng import DeterministicRNG, derive_seed
from repro.dsim.scheduler import Event, EventKind, Scheduler
from repro.errors import InvariantViolation, SimulationError, UnknownProcessError

#: Capability names backends may advertise.
CAP_DETERMINISTIC = "deterministic"    # a run is a pure function of (programs, seed, plan)
CAP_CHECKPOINT = "checkpoint"          # process state can be captured from the frontend
CAP_ROLLBACK = "rollback"              # captured state can be restored (Time Machine)
CAP_IN_FLIGHT = "in-flight-control"    # pending deliveries/timers can be cancelled
CAP_REAL_PROCESSES = "real-processes"  # runs on real OS processes


class Backend:
    """The execution substrate behind a :class:`~repro.dsim.cluster.Cluster`.

    A backend receives the frontend via :meth:`bind`, learns about
    processes through :meth:`register_process`, and owns the whole run
    loop in :meth:`run`.  Substrate-specific surfaces (``scheduler``,
    ``network``) raise :class:`SimulationError` unless the backend
    provides them, so callers fail loudly instead of silently diverging.
    """

    name = "abstract"
    capabilities: frozenset = frozenset()

    def __init__(self) -> None:
        self._cluster = None

    # -- wiring ------------------------------------------------------------
    def bind(self, cluster) -> None:
        """Attach the frontend; called once from ``Cluster.__init__``.

        A backend instance carries run state (scheduler time, queued
        events, transport accounting), so it belongs to exactly one
        cluster — silently rebinding would leak one run's clock and
        events into the next.
        """
        if self._cluster is not None and self._cluster is not cluster:
            raise SimulationError(
                f"this {self.name} backend is already bound to another cluster; "
                "create a fresh backend instance per cluster"
            )
        self._cluster = cluster

    @property
    def cluster(self):
        if self._cluster is None:
            raise SimulationError(f"{self.name} backend is not bound to a cluster")
        return self._cluster

    def register_process(self, pid: str) -> None:
        """A process id became known to the frontend."""

    # -- substrate surfaces ------------------------------------------------
    @property
    def scheduler(self) -> Scheduler:
        raise SimulationError(f"the {self.name} backend has no deterministic scheduler")

    @property
    def network(self) -> Network:
        raise SimulationError(f"the {self.name} backend has no simulated network")

    @property
    def fault_engine(self) -> Optional[MessageFaultEngine]:
        return None

    @property
    def now(self) -> float:
        raise NotImplementedError

    def make_context(self, pid: str) -> ProcessContext:
        raise SimulationError(f"the {self.name} backend cannot build frontend process contexts")

    def clear_in_flight(self, pid: str) -> None:
        raise SimulationError(
            f"the {self.name} backend cannot cancel in-flight events "
            f"(capability {CAP_IN_FLIGHT!r} missing)"
        )

    # -- execution ---------------------------------------------------------
    def start(self) -> None:
        """Prepare the run (bind contexts, install the fault plan, ``on_start``)."""
        raise NotImplementedError

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None):
        """Execute until quiescence or a limit; returns a ``RunResult``."""
        raise NotImplementedError


# ----------------------------------------------------------------------
# the deterministic simulator backend
# ----------------------------------------------------------------------
class SimBackend(Backend):
    """The discrete-event simulation substrate (the library's default).

    This is the event loop that used to live inside ``Cluster``: a
    deterministic scheduler orders deliveries, timers and injected
    faults; the simulated network decides per-channel delay, loss and
    duplication; and every observable action flows through the
    frontend's hook chain.
    """

    name = "sim"
    capabilities = frozenset(
        {CAP_DETERMINISTIC, CAP_CHECKPOINT, CAP_ROLLBACK, CAP_IN_FLIGHT}
    )

    def __init__(self) -> None:
        super().__init__()
        self._scheduler = Scheduler()
        self._network: Optional[Network] = None
        self._fault_engine: Optional[MessageFaultEngine] = None
        self._timer_events: Dict[Tuple[str, str], List[Event]] = {}

    def bind(self, cluster) -> None:
        super().bind(cluster)
        self._network = Network(
            cluster.config.network, seed=derive_seed(cluster.config.seed, "network")
        )

    def register_process(self, pid: str) -> None:
        self.network.register_process(pid)

    # -- substrate surfaces ------------------------------------------------
    @property
    def scheduler(self) -> Scheduler:
        return self._scheduler

    @property
    def network(self) -> Network:
        if self._network is None:
            raise SimulationError("sim backend is not bound to a cluster")
        return self._network

    @property
    def fault_engine(self) -> Optional[MessageFaultEngine]:
        return self._fault_engine

    @property
    def now(self) -> float:
        return self._scheduler.now

    # -- process context plumbing -----------------------------------------
    def make_context(self, pid: str) -> ProcessContext:
        cluster = self.cluster
        all_pids = tuple(cluster.pids)  # already sorted, no dict copy
        rng = DeterministicRNG(derive_seed(cluster.config.seed, "process", pid))
        return ProcessContext(
            pid=pid,
            peers=all_pids,
            send_fn=self._submit_message,
            timer_fn=lambda name, delay, payload, _pid=pid: self._set_timer(
                _pid, name, delay, payload
            ),
            cancel_timer_fn=lambda name, _pid=pid: self._cancel_timer(_pid, name),
            now_fn=lambda: self._scheduler.now,
            rng=rng,
            record_random_fn=lambda p, method, value: cluster.hooks.on_random(
                p, method, value, self._scheduler.now, cluster._vt_of(p)
            ),
            record_clock_fn=lambda p, value: cluster.hooks.on_clock_read(
                p, value, cluster._vt_of(p)
            ),
            log_fn=lambda p, text: cluster._record_trace(p, "log", text),
            scroll_position_fn=cluster.scroll_position,
        )

    # -- messaging and timers ----------------------------------------------
    def _submit_message(self, message: Message) -> None:
        cluster = self.cluster
        now = self._scheduler.now
        sender_vt = cluster._vt_of(message.src)
        cluster.hooks.on_send(message.src, message, now, sender_vt)
        cluster._record_trace(message.src, "send", message.describe())

        fault = self._fault_engine.decide(message, now) if self._fault_engine else None
        if fault is not None and fault.kind == "drop":
            cluster.hooks.on_drop(message, now, sender_vt)
            cluster._record_trace(message.src, "fault-drop", message.describe())
            return

        plans = self.network.route(message, now)
        for outcome, deliver_at, planned in plans:
            if outcome is DeliveryOutcome.DROP or deliver_at is None:
                cluster.hooks.on_drop(planned, now, sender_vt)
                cluster._record_trace(planned.src, "drop", planned.describe())
                continue
            if outcome is DeliveryOutcome.DUPLICATE:
                cluster.hooks.on_duplicate(planned, now, sender_vt)
                cluster._record_trace(planned.src, "duplicate", planned.describe())
            if fault is not None and fault.kind == "delay":
                deliver_at += fault.extra_delay
            if fault is not None and fault.kind == "duplicate":
                copy = planned.as_duplicate()
                cluster.hooks.on_duplicate(copy, now, sender_vt)
                self._scheduler.schedule_at(deliver_at, EventKind.DELIVER, copy.dst, copy)
            self._scheduler.schedule_at(deliver_at, EventKind.DELIVER, planned.dst, planned)

    def _set_timer(self, pid: str, name: str, delay: float, payload: Any) -> None:
        event = self._scheduler.schedule(delay, EventKind.TIMER, pid, (name, payload))
        self._timer_events.setdefault((pid, name), []).append(event)

    def _cancel_timer(self, pid: str, name: str) -> None:
        for event in self._timer_events.pop((pid, name), []):
            self._scheduler.cancel(event)

    def clear_in_flight(self, pid: str) -> None:
        self._scheduler.cancel_for_target(pid)
        self._timer_events = {
            key: events for key, events in self._timer_events.items() if key[0] != pid
        }

    # -- fault plan materialisation ----------------------------------------
    def _install_failure_plan(self) -> None:
        plan = self.cluster.failure_plan
        self._fault_engine = MessageFaultEngine(plan.message_faults)
        for crash in plan.crashes:
            self._scheduler.schedule_at(crash.at, EventKind.CRASH, crash.pid, crash)
            if crash.recover_at is not None:
                self._scheduler.schedule_at(crash.recover_at, EventKind.RECOVER, crash.pid, crash)
        for partition in plan.partitions:
            self.network.add_partition(partition.to_partition())
        for corruption in plan.corruptions:
            self._scheduler.schedule_at(corruption.at, EventKind.CORRUPT, corruption.pid, corruption)

    # -- run loop ----------------------------------------------------------
    def start(self) -> None:
        cluster = self.cluster
        if cluster._started:
            return
        cluster._started = True
        self._install_failure_plan()
        processes = cluster.processes()
        for pid in sorted(processes):
            processes[pid].bind(self.make_context(pid))
        cluster.hooks.on_run_start(self._scheduler.now)
        for pid in sorted(processes):
            processes[pid].on_start()
            cluster._after_handler(pid, "on_start")

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None):
        from repro.dsim.cluster import RunResult

        cluster = self.cluster
        self.start()
        config = cluster.config
        time_limit = min(until if until is not None else config.max_time, config.max_time)
        event_limit = min(
            max_events if max_events is not None else config.max_events, config.max_events
        )
        executed = 0
        reason = "quiescent"
        while not cluster._halted:
            if executed >= event_limit:
                reason = "event-limit"
                break
            next_time = self._scheduler.peek_time()
            if next_time is None:
                reason = "quiescent"
                break
            if next_time > time_limit:
                reason = "time-limit"
                break
            event = self._scheduler.pop_next()
            if event is None:
                reason = "quiescent"
                break
            self._execute(event)
            executed += 1
        if cluster._halted:
            reason = cluster._halt_reason or "halted"
        for process in cluster.processes().values():
            if not process.crashed:
                process.on_stop()
        cluster.hooks.on_run_end(self._scheduler.now)
        return RunResult(
            events_executed=executed,
            final_time=self._scheduler.now,
            stopped_reason=reason,
            violations=list(cluster._violations),
            network_stats=self.network.stats,
            process_states={pid: dict(p.state) for pid, p in cluster.processes().items()},
            trace=list(cluster._trace),
        )

    # -- event execution ---------------------------------------------------
    def _execute(self, event: Event) -> None:
        if event.kind is EventKind.DELIVER:
            self._execute_delivery(event)
        elif event.kind is EventKind.TIMER:
            self._execute_timer(event)
        elif event.kind is EventKind.CRASH:
            self._execute_crash(event)
        elif event.kind is EventKind.RECOVER:
            self._execute_recover(event)
        elif event.kind is EventKind.CORRUPT:
            self._execute_corruption(event)
        elif event.kind is EventKind.CONTROL:
            callback = event.payload
            if callable(callback):
                callback()
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown event kind {event.kind!r}")

    def _execute_delivery(self, event: Event) -> None:
        cluster = self.cluster
        message: Message = event.payload
        process = cluster.process(event.target)
        if process.crashed:
            cluster._record_trace(event.target, "dead-letter", message.describe())
            return
        now = self._scheduler.now
        cluster.hooks.before_receive(event.target, message, now)
        cluster._record_trace(event.target, "receive", message.describe())
        process.deliver(message)
        cluster.hooks.on_receive(event.target, message, now, process.vector_timestamp)
        cluster._after_handler(event.target, f"deliver {message.kind}")

    def _execute_timer(self, event: Event) -> None:
        cluster = self.cluster
        name, payload = event.payload
        process = cluster.process(event.target)
        if process.crashed:
            return
        cluster.hooks.on_timer(event.target, name, self._scheduler.now, process.vector_timestamp)
        cluster._record_trace(event.target, "timer", name)
        process.fire_timer(name, payload)
        cluster._after_handler(event.target, f"timer {name}")

    def _execute_crash(self, event: Event) -> None:
        cluster = self.cluster
        process = cluster.process(event.target)
        if process.crashed:
            return
        process.mark_crashed()
        # Cancel the crashed process's deliveries and timers, but leave any
        # scheduled RECOVER event in place so the process can come back.
        self._scheduler.cancel_for_target(event.target, EventKind.DELIVER)
        self._scheduler.cancel_for_target(event.target, EventKind.TIMER)
        self._timer_events = {
            key: events for key, events in self._timer_events.items() if key[0] != event.target
        }
        cluster.hooks.on_crash(event.target, self._scheduler.now, process.vector_timestamp)
        cluster._record_trace(event.target, "crash", "process crashed")

    def _execute_recover(self, event: Event) -> None:
        cluster = self.cluster
        process = cluster.process(event.target)
        if not process.crashed:
            return
        process.mark_recovered()
        cluster.hooks.on_recover(event.target, self._scheduler.now, process.vector_timestamp)
        cluster._record_trace(event.target, "recover", "process recovered")
        cluster._after_handler(event.target, "on_recover")

    def _execute_corruption(self, event: Event) -> None:
        cluster = self.cluster
        fault: StateCorruptionFault = event.payload
        process = cluster.process(event.target)
        if process.crashed:
            return
        fault.mutator(process.state)
        cluster.hooks.on_corruption(
            event.target, fault.description, self._scheduler.now, process.vector_timestamp
        )
        cluster._record_trace(event.target, "corrupt", fault.description)
        cluster._after_handler(event.target, "corruption")


# ----------------------------------------------------------------------
# the multiprocessing backend: real OS processes, batched pipe transport
# ----------------------------------------------------------------------
@dataclass
class MPBackendOptions:
    """Tuning knobs of the multiprocessing substrate.

    Attributes
    ----------
    time_scale:
        Wall-clock seconds per simulated time unit.  Application timers
        and fault-plan times are expressed in simulated units on both
        backends; the workers convert them with this factor, so a plan
        written for the simulator injects at the equivalent wall moment.
    flush_watermark:
        A worker flushes its outgoing batch once it holds this many
        messages (it also flushes whenever it goes idle, so the
        watermark bounds batch size, not latency).  ``1`` degenerates to
        one pipe write per message — the pre-batching behaviour, kept
        reachable for the batching benchmark's baseline.
    batch_deliveries:
        When true (default) the parent groups one routing tick's
        deliveries per destination worker and writes one batch per
        worker; when false it writes one message per pipe write.
    max_batch_messages:
        Upper bound on messages per parent batch write; very large
        bursts are split so a single pipe write stays well under the OS
        pipe buffer (both sides always drain eagerly, this is the
        belt-and-braces bound).
    max_wall_seconds:
        Hard wall-clock cap on a run, protecting the test suite from a
        quiescence-detection bug or a livelocked application.
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` on Linux
        (cheap worker startup, no pickling of factories) and ``spawn``
        everywhere else — including macOS, where CPython deliberately
        stopped defaulting to fork (unsafe under ObjC/CoreFoundation).
        Under ``spawn``, configure processes via
        picklable factories that set *instance* attributes
        (:class:`repro.dsim.process.ConfiguredFactory`, which the demo
        app builders use) — mutating class attributes in the parent does
        not cross the spawn boundary.
    """

    time_scale: float = 0.02
    flush_watermark: int = 64
    batch_deliveries: bool = True
    max_batch_messages: int = 128
    max_wall_seconds: float = 30.0
    start_method: Optional[str] = None

    def resolved_start_method(self) -> str:
        if self.start_method:
            return self.start_method
        if sys.platform.startswith("linux") and "fork" in mp.get_all_start_methods():
            return "fork"
        return "spawn"


def _mp_worker_main(
    pid: str,
    factory,
    all_pids: Tuple[str, ...],
    seed: int,
    conn,
    options: MPBackendOptions,
    check_invariants: bool,
    wall_limit: float,
    corruptions: List[Tuple[float, bytes]],
    msg_id_base: int,
) -> None:
    """Entry point of one worker process.

    The worker owns its :class:`Process` instance, services timers with
    wall-clock granularity, and talks to the parent router over one
    duplex pipe.  Outgoing messages, delivery receipts, timer firings
    and detected violations accumulate in a *flush buffer* shipped as a
    single pickled pipe write — per-sender FIFO order is preserved
    because the buffer is drained in append order.
    """
    from repro.dsim.message import reset_message_ids

    # each worker owns a disjoint msg_id range so ids stay cluster-unique
    # (the counter is interpreter-global; fork would otherwise clone it)
    reset_message_ids(msg_id_base)
    start = wall_time.monotonic()
    scale = options.time_scale
    watermark = max(1, options.flush_watermark)

    def sim_now() -> float:
        return (wall_time.monotonic() - start) / scale

    process = factory()
    timers: List[Tuple[float, int, str, Any]] = []
    timer_seq = 0
    crashed = False
    uplink_writes = 0
    timer_fires = 0
    recorded = 0

    # flush buffer: ONE tagged log in occurrence order, so the router
    # replays sends, receipts, timer firings, violations and fault
    # events exactly as they interleaved inside the worker — hooks see
    # the same causal surface a simulator run would record.
    flush_log: List[Tuple] = []
    # sends, delivery receipts and violations all count toward the
    # watermark (bookkeeping entries don't): a receive-heavy worker under
    # sustained traffic still flushes regularly, bounding both its buffer
    # and the router's in-flight map, and violations ship promptly.
    pending_units = 0

    def flush() -> None:
        nonlocal uplink_writes, flush_log, pending_units
        if not flush_log:
            return
        conn.send(("flush", pid, flush_log))
        uplink_writes += 1
        flush_log = []
        pending_units = 0

    def note_unit() -> None:
        nonlocal pending_units
        pending_units += 1
        if pending_units >= watermark:
            flush()

    def send_fn(message: Message) -> None:
        flush_log.append(("sent", message))
        note_unit()

    def timer_fn(name: str, delay: float, payload: Any) -> None:
        nonlocal timer_seq
        timer_seq += 1
        heapq.heappush(timers, (wall_time.monotonic() + delay * scale, timer_seq, name, payload))

    def cancel_timer_fn(name: str) -> None:
        nonlocal timers
        timers = [entry for entry in timers if entry[2] != name]
        heapq.heapify(timers)

    def record_action(*_args) -> None:
        nonlocal recorded
        recorded += 1

    ctx = ProcessContext(
        pid=pid,
        peers=all_pids,
        send_fn=send_fn,
        timer_fn=timer_fn,
        cancel_timer_fn=cancel_timer_fn,
        now_fn=sim_now,
        rng=DeterministicRNG(derive_seed(seed, "process", pid)),
        record_random_fn=record_action,
        record_clock_fn=record_action,
    )

    def after_handler() -> None:
        if not check_invariants or crashed:
            return
        try:
            process.check_invariants()
        except InvariantViolation as violation:
            flush_log.append(
                (
                    "violation",
                    violation.name,
                    violation.detail,
                    sim_now(),
                    process.vector_timestamp,
                )
            )
            note_unit()

    corruption_schedule = sorted(
        (at * scale + 0.0, blob) for at, blob in corruptions
    )
    corruption_index = 0

    error: Optional[str] = None
    try:
        process.bind(ctx)
        process.on_start()
        flush_log.append(("handled", "on_start", sim_now()))
        after_handler()

        deadline = start + wall_limit
        while wall_time.monotonic() < deadline:
            now_w = wall_time.monotonic()
            # injected state corruptions due at this wall moment
            while (
                corruption_index < len(corruption_schedule)
                and corruption_schedule[corruption_index][0] <= now_w - start
            ):
                _, blob = corruption_schedule[corruption_index]
                corruption_index += 1
                if not crashed:
                    fault: StateCorruptionFault = pickle.loads(blob)
                    fault.mutator(process.state)
                    flush_log.append(
                        ("event", "corrupt", fault.description, sim_now(), process.vector_timestamp)
                    )
                    flush_log.append(("handled", "corruption", sim_now()))
                    after_handler()
            # fire due timers
            while timers and timers[0][0] <= wall_time.monotonic() and not crashed:
                _, _, name, payload = heapq.heappop(timers)
                flush_log.append(("timer", name, sim_now(), process.vector_timestamp))
                process.fire_timer(name, payload)
                timer_fires += 1
                flush_log.append(("handled", f"timer {name}", sim_now()))
                after_handler()
            # wait for parent traffic until the next timer (or a short idle poll)
            timeout = 0.002
            if timers:
                timeout = min(timeout, max(0.0, timers[0][0] - wall_time.monotonic()))
            if corruption_index < len(corruption_schedule):
                due = corruption_schedule[corruption_index][0] - (wall_time.monotonic() - start)
                timeout = min(timeout, max(0.0, due))
            if not conn.poll(timeout):
                flush()  # idle: everything buffered goes out now
                continue
            item = conn.recv()
            tag = item[0]
            if tag == "batch":
                for tseq, message in item[1]:
                    if crashed:
                        flush_log.append(("dead", tseq))
                        continue
                    flush_log.append(("brecv", tseq, sim_now()))
                    process.deliver(message)
                    flush_log.append(("recv", tseq, sim_now(), process.vector_timestamp))
                    flush_log.append(("handled", f"deliver {message.kind}", sim_now()))
                    note_unit()
                    after_handler()
            elif tag == "crash":
                if not crashed:
                    process.mark_crashed()
                    crashed = True
                    timers.clear()
                    flush_log.append(("event", "crash", "", sim_now(), process.vector_timestamp))
                    flush()
            elif tag == "recover":
                if crashed:
                    process.mark_recovered()
                    crashed = False
                    flush_log.append(("event", "recover", "", sim_now(), process.vector_timestamp))
                    flush_log.append(("handled", "on_recover", sim_now()))
                    after_handler()
                    flush()
            elif tag == "probe":
                flush()
                conn.send(
                    (
                        "probe_ack",
                        pid,
                        item[1],
                        {
                            "sent_total": process.messages_sent,
                            "timers_armed": 0 if crashed else len(timers),
                            # scheduled-but-unfired corruptions count as
                            # armed work: the router must not quiesce past
                            # them (exact, clock-skew-free accounting)
                            "corruptions_pending": len(corruption_schedule) - corruption_index,
                            "crashed": crashed,
                        },
                    )
                )
                uplink_writes += 1
            elif tag == "stop":
                break
    except EOFError:  # parent went away: nothing left to report to
        return
    except Exception as exc:  # noqa: BLE001 - shipped to the parent verbatim
        error = f"{type(exc).__name__}: {exc}"

    try:
        try:
            if not crashed and error is None:
                process.on_stop()
        except Exception as exc:  # noqa: BLE001 - must not lose the final state
            error = f"on_stop: {type(exc).__name__}: {exc}"
        flush()
        conn.send(
            (
                "result",
                pid,
                {
                    "state": dict(process.state),
                    "sent": process.messages_sent,
                    "received": process.messages_received,
                    "recorded": recorded,
                    "timer_fires": timer_fires,
                    "uplink_writes": uplink_writes + 1,  # counting this result write
                    "error": error,
                },
            )
        )
    except (EOFError, BrokenPipeError, OSError):  # pragma: no cover - parent gone
        pass


class _WorkerLink:
    """Parent-side handle for one worker: its pipe plus a sender thread.

    All router→worker writes go through a queue drained by a dedicated
    thread, so the router's main loop *never blocks on a pipe write*.
    This is what makes the transport deadlock-free under arbitrary
    payload sizes: a worker blocked mid-flush (its uplink full) is
    always eventually drained by the router loop, because the router is
    never itself stuck in ``send`` — at worst its sender thread is, and
    that thread unblocks as soon as the worker finishes flushing.  A
    worker that died simply absorbs the remaining queue (broken-pipe
    writes are dropped, not raised into ``run()``).
    """

    def __init__(self, conn) -> None:
        self.conn = conn
        self.writes = 0
        self._queue: "queue_module.SimpleQueue" = queue_module.SimpleQueue()
        self._thread = threading.Thread(target=self._pump, daemon=True)
        self._thread.start()

    _CLOSE = object()

    def _pump(self) -> None:
        while True:
            item = self._queue.get()
            if item is self._CLOSE:
                return
            try:
                self.conn.send(item)
                self.writes += 1
            except (BrokenPipeError, OSError):
                continue  # worker gone: keep draining so close() terminates

    def send(self, item) -> None:
        self._queue.put(item)

    def close(self, timeout: float = 2.0) -> None:
        self._queue.put(self._CLOSE)
        self._thread.join(timeout=timeout)


class MPBackend(Backend):
    """Real OS processes behind the cluster API, with a batched transport.

    Limitations (documented, deliberate):

    * timers are serviced with wall-clock granularity, so runs are not
      bit-for-bit deterministic — which is exactly the nondeterminism
      the Scroll exists to capture;
    * crash injection is cooperative (the worker stops processing)
      rather than ``SIGKILL``, so final state can still be collected;
    * there is no frontend access to live process state, hence no
      checkpoint/rollback capability — FixD degrades to detection and
      reporting on this substrate;
    * ``max_events`` is not enforced (runs are wall-clock bounded);
    * ``halt_on_violation`` is asynchronous: the violating worker checks
      invariants in-process but the router only halts once the
      violation's flush arrives, so workers keep executing for a short
      window after the violation — final states reflect state at the
      (slightly later) halt, not at the violating handler as on the
      simulator.

    The run ends at *quiescence*, detected with a probe protocol: when
    the router has nothing queued, delayed or in flight and no fault
    events still scheduled, it probes every worker; a worker answers
    after draining its inbox (the pipe is FIFO) with its armed-timer and
    sent-message counters.  The system is quiescent when all answers
    agree with the router's own accounting and nothing new arrived
    during the round.
    """

    name = "mp"
    capabilities = frozenset({CAP_REAL_PROCESSES})

    def __init__(self, options: Optional[MPBackendOptions] = None) -> None:
        super().__init__()
        self.options = options or MPBackendOptions()
        self._now = 0.0
        self._fault_engine: Optional[MessageFaultEngine] = None
        #: transport accounting of the last run (the batching benchmark's metric)
        self.transport_stats: Dict[str, int] = {}
        #: per-worker counters of the last run (sent/received/recorded/...)
        self.worker_stats: Dict[str, Dict[str, int]] = {}

    @property
    def now(self) -> float:
        return self._now

    @property
    def fault_engine(self) -> Optional[MessageFaultEngine]:
        return self._fault_engine

    def start(self) -> None:
        """No-op: workers are started inside :meth:`run`."""

    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None):
        from repro.dsim.cluster import RunResult

        cluster = self.cluster
        if cluster._started:
            raise SimulationError("the mp backend cannot re-enter a finished run")
        if max_events is not None:
            raise SimulationError(
                "the mp backend cannot enforce max_events (runs are wall-clock "
                "bounded); pass until= instead"
            )
        config = cluster.config
        options = self.options
        scale = options.time_scale

        pids = tuple(cluster.pids)
        factories = {}
        for pid in pids:
            factory = cluster.factory_for(pid)
            if factory is None:
                raise SimulationError(
                    f"process {pid!r} was registered as an instance; the mp backend "
                    "needs zero-argument factories to build workers"
                )
            factories[pid] = factory

        plan = cluster.failure_plan
        known_pids = set(pids)
        for crash in plan.crashes:
            if crash.pid not in known_pids:
                raise UnknownProcessError(crash.pid)
        for corruption in plan.corruptions:
            if corruption.pid not in known_pids:
                raise UnknownProcessError(corruption.pid)
        self._fault_engine = MessageFaultEngine(plan.message_faults)
        partitions = [p.to_partition() for p in plan.partitions]

        sim_limit = min(until if until is not None else config.max_time, config.max_time)
        wall_limit = min(sim_limit * scale, options.max_wall_seconds)

        # crash/recover schedule driven by the router (sorted by wall time)
        schedule: List[Tuple[float, int, str, str]] = []
        order = 0
        for crash in plan.crashes:
            schedule.append((crash.at * scale, order, "crash", crash.pid))
            order += 1
            if crash.recover_at is not None:
                schedule.append((crash.recover_at * scale, order, "recover", crash.pid))
                order += 1
        schedule.sort()
        corruptions_by_pid: Dict[str, List[Tuple[float, bytes]]] = {}
        for corruption in plan.corruptions:
            try:
                blob = pickle.dumps(corruption, protocol=pickle.HIGHEST_PROTOCOL)
            except Exception as exc:
                raise SimulationError(
                    "mp backend state-corruption faults must be picklable "
                    f"(mutator for {corruption.pid!r} is not: {exc})"
                ) from exc
            corruptions_by_pid.setdefault(corruption.pid, []).append((corruption.at, blob))

        # setup validated: the run is now committed (workers about to start)
        cluster._started = True
        ctx = mp.get_context(options.resolved_start_method())
        conns = {}
        links: Dict[str, _WorkerLink] = {}
        workers = []
        start_wall = wall_time.monotonic()
        for index, pid in enumerate(pids):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            worker = ctx.Process(
                target=_mp_worker_main,
                args=(
                    pid,
                    factories[pid],
                    pids,
                    config.seed,
                    child_conn,
                    options,
                    config.check_invariants,
                    wall_limit,
                    corruptions_by_pid.get(pid, []),
                    # disjoint per-worker msg_id ranges; the router (range
                    # below 10^9, used for injected duplicates) never collides
                    (index + 1) * 1_000_000_000,
                ),
                daemon=True,
            )
            worker.start()
            child_conn.close()
            conns[pid] = parent_conn
            workers.append(worker)
        # The sender threads start only after every worker process exists:
        # forking a child while another link's thread may hold a lock is
        # the classic fork-with-threads hazard.  Writes go through these
        # threads so the router loop (also the only reader) can never
        # block on a full pipe.
        for pid, conn in conns.items():
            links[pid] = _WorkerLink(conn)
        conn_to_pid = {conn: pid for pid, conn in conns.items()}

        hooks = cluster.hooks
        hooks.on_run_start(0.0)

        # router state
        tseq_counter = 0
        in_flight: Dict[int, Tuple[str, Message]] = {}
        pending_out: Dict[str, List[Tuple[int, Message]]] = {pid: [] for pid in pids}
        delayed: List[Tuple[float, int, Message]] = []
        crashed_pids: set = set()
        schedule_index = 0
        parent_writes = 0
        routed = 0
        delivered_batches = 0
        max_batch = 0
        dropped = 0
        duplicated = 0
        dead_letters = 0
        uplink_messages = 0
        probe_seq = 0
        probe_round_dirty = True
        probe_acks: Dict[str, Dict[str, int]] = {}
        last_probe_at = -1.0
        #: minimum wall seconds between probe rounds; bounds the idle-churn
        #: writes while workers sit on long-armed timers
        probe_interval = 0.005
        results: Dict[str, Dict[str, Any]] = {}
        reason = "time-limit"

        def elapsed() -> float:
            return wall_time.monotonic() - start_wall

        def update_now() -> None:
            self._now = elapsed() / scale

        def enqueue(dst: str, message: Message) -> None:
            nonlocal tseq_counter, dead_letters, probe_round_dirty
            if dst not in pending_out:
                raise UnknownProcessError(dst)
            if dst in crashed_pids:
                dead_letters += 1
                cluster._record_trace(dst, "dead-letter", message.describe())
                return
            tseq_counter += 1
            in_flight[tseq_counter] = (dst, message)
            pending_out[dst].append((tseq_counter, message))
            probe_round_dirty = True

        def route(message: Message) -> None:
            nonlocal routed, dropped, duplicated
            routed += 1
            sent_at = message.send_time
            hooks.on_send(message.src, message, sent_at, message.vt)
            cluster._record_trace(message.src, "send", message.describe())
            fault = self._fault_engine.decide(message, sent_at)
            if fault is not None and fault.kind == "drop":
                dropped += 1
                hooks.on_drop(message, sent_at, message.vt)
                cluster._record_trace(message.src, "fault-drop", message.describe())
                return
            if any(p.active_at(sent_at) and p.separates(message.src, message.dst) for p in partitions):
                dropped += 1
                hooks.on_drop(message, sent_at, message.vt)
                cluster._record_trace(message.src, "drop", message.describe())
                return
            if fault is not None and fault.kind == "duplicate":
                duplicated += 1
                copy = message.as_duplicate()
                hooks.on_duplicate(copy, sent_at, message.vt)
                cluster._record_trace(copy.src, "duplicate", copy.describe())
                enqueue(copy.dst, copy)
            if fault is not None and fault.kind == "delay":
                heapq.heappush(
                    delayed, ((sent_at + fault.extra_delay) * scale, message.msg_id, message)
                )
                return
            enqueue(message.dst, message)

        def handle_flush(pid: str, log: List[Tuple]) -> None:
            """Replay one worker flush *in occurrence order*.

            The log interleaves sends, delivery receipts, timer firings,
            violations and fault events exactly as they happened inside
            the worker, so the hook chain (and therefore the Scroll and
            any bug-report tail) observes the same ordering a simulator
            run would produce.
            """
            nonlocal uplink_messages, probe_round_dirty
            update_now()
            for entry in log:
                tag = entry[0]
                if tag == "sent":
                    uplink_messages += 1
                    route(entry[1])
                elif tag == "brecv":
                    _, tseq, at = entry
                    dst, message = in_flight[tseq]
                    hooks.before_receive(dst, message, at)
                elif tag == "handled":
                    _, description, at = entry
                    hooks.after_handler(pid, description, at)
                elif tag == "recv":
                    _, tseq, at, vt = entry
                    dst, message = in_flight.pop(tseq)
                    cluster._record_trace(dst, "receive", message.describe())
                    hooks.on_receive(dst, message, at, vt)
                elif tag == "dead":
                    dst, message = in_flight.pop(entry[1])
                    cluster._record_trace(dst, "dead-letter", message.describe())
                elif tag == "timer":
                    _, name, at, vt = entry
                    cluster._record_trace(pid, "timer", name)
                    hooks.on_timer(pid, name, at, vt)
                elif tag == "violation":
                    _, name, detail, at, vt = entry
                    cluster._handle_violation(pid, name, detail, at, vt)
                elif tag == "event":
                    _, kind, detail, at, vt = entry
                    if kind == "crash":
                        cluster._record_trace(pid, "crash", "process crashed")
                        hooks.on_crash(pid, at, vt)
                    elif kind == "recover":
                        cluster._record_trace(pid, "recover", "process recovered")
                        hooks.on_recover(pid, at, vt)
                    elif kind == "corrupt":
                        cluster._record_trace(pid, "corrupt", detail)
                        hooks.on_corruption(pid, detail, at, vt)
                    probe_round_dirty = True

        def handle_item(pid: str, item) -> None:
            nonlocal reason
            tag = item[0]
            if tag == "flush":
                handle_flush(item[1], item[2])
            elif tag == "probe_ack":
                if item[2] == probe_seq:
                    probe_acks[item[1]] = item[3]
            elif tag == "result":
                results[item[1]] = item[2]
                if item[2].get("error"):
                    cluster._record_trace(item[1], "error", item[2]["error"])
                    cluster.halt(f"worker-error:{item[1]}")
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unexpected uplink item {tag!r} from {pid!r}")

        try:
            while True:
                update_now()
                if elapsed() >= wall_limit:
                    reason = "time-limit"
                    break
                if cluster._halted:
                    reason = cluster._halt_reason or "halted"
                    break
                # fault schedule (crash / recover control messages)
                while schedule_index < len(schedule) and schedule[schedule_index][0] <= elapsed():
                    _, _, kind, target = schedule[schedule_index]
                    schedule_index += 1
                    links[target].send((kind,))
                    if kind == "crash":
                        crashed_pids.add(target)
                        # in-flight deliveries to a crashed worker dead-letter
                        # inside the worker; stop queueing new ones here.
                    else:
                        crashed_pids.discard(target)
                    probe_round_dirty = True
                # delayed messages whose injection deadline passed
                while delayed and delayed[0][0] <= elapsed():
                    _, _, message = heapq.heappop(delayed)
                    enqueue(message.dst, message)
                # drain worker uplinks
                ready = mp_wait(list(conns.values()), timeout=0.002)
                for conn in ready:
                    pid = conn_to_pid[conn]
                    try:
                        while conn.poll():
                            handle_item(pid, conn.recv())
                    except (EOFError, OSError):
                        # The worker's pipe closed.  Drop it from the wait
                        # set (a closed pipe reports permanently ready and
                        # would busy-spin the router) and treat a death
                        # without a result as a lost worker.
                        conns.pop(pid, None)
                        if pid not in results:
                            cluster._record_trace(
                                pid, "error", "worker pipe closed unexpectedly"
                            )
                            cluster.halt(f"worker-lost:{pid}")
                        continue
                # ship this tick's deliveries, one batch per destination
                for dst, batch in pending_out.items():
                    if not batch:
                        continue
                    if options.batch_deliveries:
                        for cut in range(0, len(batch), options.max_batch_messages):
                            piece = batch[cut:cut + options.max_batch_messages]
                            links[dst].send(("batch", piece))
                            delivered_batches += 1
                            max_batch = max(max_batch, len(piece))
                    else:
                        for entry in batch:
                            links[dst].send(("batch", [entry]))
                            delivered_batches += 1
                            max_batch = max(max_batch, 1)
                    pending_out[dst] = []
                # quiescence detection
                busy = (
                    in_flight
                    or delayed
                    or schedule_index < len(schedule)
                    or any(pending_out.values())
                )
                if busy:
                    probe_acks.clear()
                    probe_round_dirty = True
                    continue
                if probe_round_dirty or len(probe_acks) < len(pids):
                    if probe_round_dirty and elapsed() - last_probe_at >= probe_interval:
                        probe_seq += 1
                        probe_acks.clear()
                        probe_round_dirty = False
                        last_probe_at = elapsed()
                        for link in links.values():
                            link.send(("probe", probe_seq))
                    continue
                sent_total = sum(ack["sent_total"] for ack in probe_acks.values())
                armed = sum(
                    ack["timers_armed"] + ack.get("corruptions_pending", 0)
                    for ack in probe_acks.values()
                )
                if sent_total == uplink_messages and armed == 0 and not in_flight:
                    reason = "quiescent"
                    break
                # workers still have armed timers or scheduled corruptions
                # (or a flush is in transit): fresh round on the next pass
                probe_round_dirty = True
        finally:
            update_now()
            for link in links.values():
                link.send(("stop",))
            # collect results (late flushes keep hooks complete)
            collect_deadline = wall_time.monotonic() + 5.0
            live = dict(conns)
            while len(results) < len(pids) and wall_time.monotonic() < collect_deadline:
                ready = mp_wait(list(live.values()), timeout=0.1)
                for conn in ready:
                    pid = conn_to_pid[conn]
                    try:
                        handle_item(pid, conn.recv())
                    except (EOFError, OSError):
                        live.pop(pid, None)
            for link in links.values():
                link.close()
            parent_writes = sum(link.writes for link in links.values())
            for worker in workers:
                worker.join(timeout=2.0)
                if worker.is_alive():  # pragma: no cover - defensive cleanup
                    worker.terminate()
            for conn in conn_to_pid:  # every pipe, including dropped ones
                conn.close()
            hooks.on_run_end(self._now)

        # a worker error discovered while collecting results (e.g. a failing
        # on_stop) must not masquerade as a clean quiescent run
        if reason == "quiescent":
            for pid, result in results.items():
                if result.get("error"):
                    reason = f"worker-error:{pid}"
                    break
        worker_writes = sum(result.get("uplink_writes", 0) for result in results.values())
        self.worker_stats = results
        self.transport_stats = {
            "messages_routed": routed,
            "messages_delivered": sum(r.get("received", 0) for r in results.values()),
            "dropped": dropped,
            "duplicated": duplicated,
            "dead_letters": dead_letters,
            "parent_pipe_writes": parent_writes,
            "worker_pipe_writes": worker_writes,
            "pipe_writes": parent_writes + worker_writes,
            "delivery_batches": delivered_batches,
            "max_batch": max_batch,
        }
        events = sum(
            result.get("received", 0) + result.get("timer_fires", 0)
            for result in results.values()
        )
        return RunResult(
            events_executed=events,
            final_time=self._now,
            stopped_reason=reason,
            violations=list(cluster._violations),
            network_stats={
                "delivered": sum(r.get("received", 0) for r in results.values()),
                "dropped": dropped,
                "duplicated": duplicated,
            },
            process_states={
                pid: dict(result.get("state", {})) for pid, result in results.items()
            },
            trace=list(cluster._trace),
        )
