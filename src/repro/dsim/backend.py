"""Pluggable execution backends: one cluster API over multiple substrates.

The paper's FixD architecture assumes a single runtime substrate — a
cluster of communicating POSIX processes — underneath its detection,
reporting and recovery layers.  This module makes that substrate
pluggable.  :class:`~repro.dsim.cluster.Cluster` is a thin frontend
(process table, hooks, failure plan, violation policy); everything that
actually *executes* lives behind the :class:`Backend` protocol:

* :class:`SimBackend` — the deterministic discrete-event simulator
  (scheduler + network + channels), refactored out of the old
  monolithic ``Cluster``.  Fully deterministic, supports checkpointing,
  rollback and in-flight message control, which is why it is the
  substrate the Time Machine and the Investigator require.

* :class:`MPBackend` — the same :class:`~repro.dsim.process.Process`
  subclasses on real OS processes, over a pluggable **transport**: a
  worker accumulates outgoing messages up to a *flush watermark* and
  ships them as one frame; the parent groups each routing tick's
  deliveries per destination and writes one batch per worker.  With
  ``transport="pipe"`` every frame is a pickled pipe write; with
  ``transport="shm"`` frames travel through per-worker shared-memory
  rings with a marshal fast path that keeps the hot path out of
  ``pickle`` entirely (see :mod:`repro.dsim.shm_ring`).  Either way,
  batches preserve per-sender FIFO order and every message carries its
  sender's vector timestamp, so recording hooks observe the same causal
  surface as on the simulator.  Fault plans map directly:
  crashes/recoveries become control messages, message faults and
  partitions are applied by the parent router, state corruptions fire
  inside the worker.

* :class:`~repro.dsim.net_backend.NetBackend` (own module) — the same
  worker loop over asyncio sockets to a consistent-hash-sharded router;
  the first substrate whose wire protocol could leave the box.

Capability flags tell the FixD layers what a backend can do, so e.g.
checkpoint/rollback machinery attaches only where it is meaningful.
"""

from __future__ import annotations

import heapq
import multiprocessing as mp
import pickle
import queue as queue_module
import sys
import threading
import time as wall_time
from dataclasses import dataclass, replace as dataclass_replace
from multiprocessing.connection import wait as mp_wait
from typing import Any, Dict, List, Optional, Tuple

from repro.dsim import shm_ring
from repro.dsim.channel import DeliveryOutcome
from repro.dsim.failure import MessageFaultEngine, StateCorruptionFault
from repro.dsim.message import Message
from repro.dsim.network import Network
from repro.dsim.process import ProcessContext
from repro.dsim.rng import DeterministicRNG, derive_seed
from repro.dsim.scheduler import Event, EventKind, Scheduler
from repro.errors import InvariantViolation, SimulationError, UnknownProcessError

#: Transports the multiprocessing backend can run on.
TRANSPORTS = ("pipe", "shm")

#: Capability names backends may advertise.
CAP_DETERMINISTIC = "deterministic"    # a run is a pure function of (programs, seed, plan)
CAP_CHECKPOINT = "checkpoint"          # process state can be captured from the frontend
CAP_ROLLBACK = "rollback"              # captured state can be restored (Time Machine)
CAP_IN_FLIGHT = "in-flight-control"    # pending deliveries/timers can be cancelled
CAP_REAL_PROCESSES = "real-processes"  # runs on real OS processes


class Backend:
    """The execution substrate behind a :class:`~repro.dsim.cluster.Cluster`.

    A backend receives the frontend via :meth:`bind`, learns about
    processes through :meth:`register_process`, and owns the whole run
    loop in :meth:`run`.  Substrate-specific surfaces (``scheduler``,
    ``network``) raise :class:`SimulationError` unless the backend
    provides them, so callers fail loudly instead of silently diverging.
    """

    name = "abstract"
    capabilities: frozenset = frozenset()

    def __init__(self) -> None:
        self._cluster = None

    # -- wiring ------------------------------------------------------------
    def bind(self, cluster) -> None:
        """Attach the frontend; called once from ``Cluster.__init__``.

        A backend instance carries run state (scheduler time, queued
        events, transport accounting), so it belongs to exactly one
        cluster — silently rebinding would leak one run's clock and
        events into the next.
        """
        if self._cluster is not None and self._cluster is not cluster:
            raise SimulationError(
                f"this {self.name} backend is already bound to another cluster; "
                "create a fresh backend instance per cluster"
            )
        self._cluster = cluster

    @property
    def cluster(self):
        if self._cluster is None:
            raise SimulationError(f"{self.name} backend is not bound to a cluster")
        return self._cluster

    def register_process(self, pid: str) -> None:
        """A process id became known to the frontend."""

    # -- substrate surfaces ------------------------------------------------
    @property
    def scheduler(self) -> Scheduler:
        raise SimulationError(f"the {self.name} backend has no deterministic scheduler")

    @property
    def network(self) -> Network:
        raise SimulationError(f"the {self.name} backend has no simulated network")

    @property
    def fault_engine(self) -> Optional[MessageFaultEngine]:
        return None

    @property
    def now(self) -> float:
        raise NotImplementedError

    def make_context(self, pid: str) -> ProcessContext:
        raise SimulationError(f"the {self.name} backend cannot build frontend process contexts")

    def clear_in_flight(self, pid: str) -> None:
        raise SimulationError(
            f"the {self.name} backend cannot cancel in-flight events "
            f"(capability {CAP_IN_FLIGHT!r} missing)"
        )

    # -- execution ---------------------------------------------------------
    def start(self) -> None:
        """Prepare the run (bind contexts, install the fault plan, ``on_start``)."""
        raise NotImplementedError

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None):
        """Execute until quiescence or a limit; returns a ``RunResult``."""
        raise NotImplementedError


# ----------------------------------------------------------------------
# the deterministic simulator backend
# ----------------------------------------------------------------------
class SimBackend(Backend):
    """The discrete-event simulation substrate (the library's default).

    This is the event loop that used to live inside ``Cluster``: a
    deterministic scheduler orders deliveries, timers and injected
    faults; the simulated network decides per-channel delay, loss and
    duplication; and every observable action flows through the
    frontend's hook chain.
    """

    name = "sim"
    capabilities = frozenset(
        {CAP_DETERMINISTIC, CAP_CHECKPOINT, CAP_ROLLBACK, CAP_IN_FLIGHT}
    )

    def __init__(self) -> None:
        super().__init__()
        self._scheduler = Scheduler()
        self._network: Optional[Network] = None
        self._fault_engine: Optional[MessageFaultEngine] = None
        self._timer_events: Dict[Tuple[str, str], List[Event]] = {}

    def bind(self, cluster) -> None:
        super().bind(cluster)
        self._network = Network(
            cluster.config.network, seed=derive_seed(cluster.config.seed, "network")
        )

    def register_process(self, pid: str) -> None:
        self.network.register_process(pid)

    # -- substrate surfaces ------------------------------------------------
    @property
    def scheduler(self) -> Scheduler:
        return self._scheduler

    @property
    def network(self) -> Network:
        if self._network is None:
            raise SimulationError("sim backend is not bound to a cluster")
        return self._network

    @property
    def fault_engine(self) -> Optional[MessageFaultEngine]:
        return self._fault_engine

    @property
    def now(self) -> float:
        return self._scheduler.now

    # -- process context plumbing -----------------------------------------
    def make_context(self, pid: str) -> ProcessContext:
        cluster = self.cluster
        all_pids = tuple(cluster.pids)  # already sorted, no dict copy
        rng = DeterministicRNG(derive_seed(cluster.config.seed, "process", pid))
        return ProcessContext(
            pid=pid,
            peers=all_pids,
            send_fn=self._submit_message,
            timer_fn=lambda name, delay, payload, _pid=pid: self._set_timer(
                _pid, name, delay, payload
            ),
            cancel_timer_fn=lambda name, _pid=pid: self._cancel_timer(_pid, name),
            now_fn=lambda: self._scheduler.now,
            rng=rng,
            record_random_fn=lambda p, method, value: cluster.hooks.on_random(
                p, method, value, self._scheduler.now, cluster._vt_of(p)
            ),
            record_clock_fn=lambda p, value: cluster.hooks.on_clock_read(
                p, value, cluster._vt_of(p)
            ),
            log_fn=lambda p, text: cluster._record_trace(p, "log", text),
            scroll_position_fn=cluster.scroll_position,
        )

    # -- messaging and timers ----------------------------------------------
    def _submit_message(self, message: Message) -> None:
        cluster = self.cluster
        now = self._scheduler.now
        sender_vt = cluster._vt_of(message.src)
        cluster.hooks.on_send(message.src, message, now, sender_vt)
        cluster._record_trace(message.src, "send", message.describe())

        fault = self._fault_engine.decide(message, now) if self._fault_engine else None
        if fault is not None and fault.kind == "drop":
            cluster.hooks.on_drop(message, now, sender_vt)
            cluster._record_trace(message.src, "fault-drop", message.describe())
            return

        plans = self.network.route(message, now)
        for outcome, deliver_at, planned in plans:
            if outcome is DeliveryOutcome.DROP or deliver_at is None:
                cluster.hooks.on_drop(planned, now, sender_vt)
                cluster._record_trace(planned.src, "drop", planned.describe())
                continue
            if outcome is DeliveryOutcome.DUPLICATE:
                cluster.hooks.on_duplicate(planned, now, sender_vt)
                cluster._record_trace(planned.src, "duplicate", planned.describe())
            if fault is not None and fault.kind == "delay":
                deliver_at += fault.extra_delay
            if fault is not None and fault.kind == "duplicate":
                copy = planned.as_duplicate()
                cluster.hooks.on_duplicate(copy, now, sender_vt)
                self._scheduler.schedule_at(deliver_at, EventKind.DELIVER, copy.dst, copy)
            self._scheduler.schedule_at(deliver_at, EventKind.DELIVER, planned.dst, planned)

    def _set_timer(self, pid: str, name: str, delay: float, payload: Any) -> None:
        event = self._scheduler.schedule(delay, EventKind.TIMER, pid, (name, payload))
        self._timer_events.setdefault((pid, name), []).append(event)

    def _cancel_timer(self, pid: str, name: str) -> None:
        for event in self._timer_events.pop((pid, name), []):
            self._scheduler.cancel(event)

    def clear_in_flight(self, pid: str) -> None:
        self._scheduler.cancel_for_target(pid)
        self._timer_events = {
            key: events for key, events in self._timer_events.items() if key[0] != pid
        }

    # -- resume continuation: re-injecting a persisted in-flight window ----
    def inject_delivery(self, message: Message, at: float) -> Event:
        """Schedule a previously in-flight message for delivery at ``at``.

        Used when a resumed run continues execution: deliveries that were
        pending in the crashed scheduler are re-queued at their original
        absolute times, bypassing the network (delay/loss were already
        decided before the crash).
        """
        return self._scheduler.schedule_at(at, EventKind.DELIVER, message.dst, message)

    def inject_timer(self, pid: str, name: str, at: float, payload: Any = None) -> Event:
        """Re-arm a previously pending timer to fire at absolute time ``at``."""
        event = self._scheduler.schedule_at(at, EventKind.TIMER, pid, (name, payload))
        self._timer_events.setdefault((pid, name), []).append(event)
        return event

    def inject_recovery(self, pid: str, at: float) -> Event:
        """Schedule a bare RECOVER for a process that crashed before a resume.

        A continuation re-arms only the *remaining* fault schedule; a
        crash that already happened must not fire again, but its
        scheduled recovery still has to — this re-queues just that half.
        """
        return self._scheduler.schedule_at(at, EventKind.RECOVER, pid, None)

    # -- fault plan materialisation ----------------------------------------
    def _install_failure_plan(self) -> None:
        plan = self.cluster.failure_plan
        self._fault_engine = MessageFaultEngine(plan.message_faults)
        for crash in plan.crashes:
            self._scheduler.schedule_at(crash.at, EventKind.CRASH, crash.pid, crash)
            if crash.recover_at is not None:
                self._scheduler.schedule_at(crash.recover_at, EventKind.RECOVER, crash.pid, crash)
        for partition in plan.partitions:
            self.network.add_partition(partition.to_partition())
        for corruption in plan.corruptions:
            self._scheduler.schedule_at(corruption.at, EventKind.CORRUPT, corruption.pid, corruption)

    # -- run loop ----------------------------------------------------------
    def start(self) -> None:
        cluster = self.cluster
        if cluster._started:
            return
        cluster._started = True
        self._install_failure_plan()
        processes = cluster.processes()
        for pid in sorted(processes):
            processes[pid].bind(self.make_context(pid))
        cluster.hooks.on_run_start(self._scheduler.now)
        for pid in sorted(processes):
            processes[pid].on_start()
            cluster._after_handler(pid, "on_start")

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None):
        from repro.dsim.cluster import RunResult

        cluster = self.cluster
        self.start()
        config = cluster.config
        time_limit = min(until if until is not None else config.max_time, config.max_time)
        event_limit = min(
            max_events if max_events is not None else config.max_events, config.max_events
        )
        executed = 0
        reason = "quiescent"
        while not cluster._halted:
            if executed >= event_limit:
                reason = "event-limit"
                break
            next_time = self._scheduler.peek_time()
            if next_time is None:
                reason = "quiescent"
                break
            if next_time > time_limit:
                reason = "time-limit"
                break
            event = self._scheduler.pop_next()
            if event is None:
                reason = "quiescent"
                break
            self._execute(event)
            executed += 1
        if cluster._halted:
            reason = cluster._halt_reason or "halted"
        for process in cluster.processes().values():
            if not process.crashed:
                process.on_stop()
        cluster.hooks.on_run_end(self._scheduler.now)
        return RunResult(
            events_executed=executed,
            final_time=self._scheduler.now,
            stopped_reason=reason,
            violations=list(cluster._violations),
            network_stats=self.network.stats,
            process_states={pid: dict(p.state) for pid, p in cluster.processes().items()},
            trace=list(cluster._trace),
        )

    # -- event execution ---------------------------------------------------
    def _execute(self, event: Event) -> None:
        if event.kind is EventKind.DELIVER:
            self._execute_delivery(event)
        elif event.kind is EventKind.TIMER:
            self._execute_timer(event)
        elif event.kind is EventKind.CRASH:
            self._execute_crash(event)
        elif event.kind is EventKind.RECOVER:
            self._execute_recover(event)
        elif event.kind is EventKind.CORRUPT:
            self._execute_corruption(event)
        elif event.kind is EventKind.CONTROL:
            callback = event.payload
            if callable(callback):
                callback()
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown event kind {event.kind!r}")

    def _execute_delivery(self, event: Event) -> None:
        cluster = self.cluster
        message: Message = event.payload
        process = cluster.process(event.target)
        if process.crashed:
            cluster._record_trace(event.target, "dead-letter", message.describe())
            return
        now = self._scheduler.now
        cluster.hooks.before_receive(event.target, message, now)
        cluster._record_trace(event.target, "receive", message.describe())
        process.deliver(message)
        cluster.hooks.on_receive(event.target, message, now, process.vector_timestamp)
        cluster._after_handler(event.target, f"deliver {message.kind}")

    def _execute_timer(self, event: Event) -> None:
        cluster = self.cluster
        name, payload = event.payload
        process = cluster.process(event.target)
        if process.crashed:
            return
        cluster.hooks.on_timer(
            event.target, name, self._scheduler.now, process.vector_timestamp, payload
        )
        cluster._record_trace(event.target, "timer", name)
        process.fire_timer(name, payload)
        cluster._after_handler(event.target, f"timer {name}")

    def _execute_crash(self, event: Event) -> None:
        cluster = self.cluster
        process = cluster.process(event.target)
        if process.crashed:
            return
        process.mark_crashed()
        # Cancel the crashed process's deliveries and timers, but leave any
        # scheduled RECOVER event in place so the process can come back.
        self._scheduler.cancel_for_target(event.target, EventKind.DELIVER)
        self._scheduler.cancel_for_target(event.target, EventKind.TIMER)
        self._timer_events = {
            key: events for key, events in self._timer_events.items() if key[0] != event.target
        }
        cluster.hooks.on_crash(event.target, self._scheduler.now, process.vector_timestamp)
        cluster._record_trace(event.target, "crash", "process crashed")

    def _execute_recover(self, event: Event) -> None:
        cluster = self.cluster
        process = cluster.process(event.target)
        if not process.crashed:
            return
        process.mark_recovered()
        cluster.hooks.on_recover(event.target, self._scheduler.now, process.vector_timestamp)
        cluster._record_trace(event.target, "recover", "process recovered")
        cluster._after_handler(event.target, "on_recover")

    def _execute_corruption(self, event: Event) -> None:
        cluster = self.cluster
        fault: StateCorruptionFault = event.payload
        process = cluster.process(event.target)
        if process.crashed:
            return
        fault.mutator(process.state)
        cluster.hooks.on_corruption(
            event.target, fault.description, self._scheduler.now, process.vector_timestamp
        )
        cluster._record_trace(event.target, "corrupt", fault.description)
        cluster._after_handler(event.target, "corruption")


# ----------------------------------------------------------------------
# the multiprocessing backend: real OS processes, batched pipe transport
# ----------------------------------------------------------------------
@dataclass
class MPBackendOptions:
    """Tuning knobs of the multiprocessing substrate.

    Attributes
    ----------
    time_scale:
        Wall-clock seconds per simulated time unit.  Application timers
        and fault-plan times are expressed in simulated units on both
        backends; the workers convert them with this factor, so a plan
        written for the simulator injects at the equivalent wall moment.
    flush_watermark:
        A worker flushes its outgoing batch once it holds this many
        messages (it also flushes whenever it goes idle, so the
        watermark bounds batch size, not latency).  ``1`` degenerates to
        one pipe write per message — the pre-batching behaviour, kept
        reachable for the batching benchmark's baseline.
    batch_deliveries:
        When true (default) the parent groups one routing tick's
        deliveries per destination worker and writes one batch per
        worker; when false it writes one message per pipe write.
    max_batch_messages:
        Upper bound on messages per parent batch write; very large
        bursts are split so a single pipe write stays well under the OS
        pipe buffer (both sides always drain eagerly, this is the
        belt-and-braces bound).
    max_wall_seconds:
        Hard wall-clock cap on a run, protecting the test suite from a
        quiescence-detection bug or a livelocked application.
    transport:
        ``"pipe"`` (default) ships every batch as one pickled pipe
        write; ``"shm"`` moves data frames through per-worker
        shared-memory SPSC rings (:mod:`repro.dsim.shm_ring`) with a
        struct fast path that keeps common payloads out of ``pickle``
        entirely — the pipe is then reserved for control traffic and
        oversize frames.  Both transports preserve per-sender FIFO
        order, vector timestamps, the ordered single-log flush
        protocol, and probe-based quiescence.
    ring_bytes:
        Per-direction ring capacity of the shm transport.  Frames
        larger than a quarter of this spill to the pipe (behind an
        in-ring ordering marker).
    ring_write_timeout:
        How long a full ring blocks a writer (backpressure) before the
        frame is treated as undeliverable.
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` on Linux
        (cheap worker startup, no pickling of factories) and ``spawn``
        everywhere else — including macOS, where CPython deliberately
        stopped defaulting to fork (unsafe under ObjC/CoreFoundation).
        Under ``spawn``, configure processes via
        picklable factories that set *instance* attributes
        (:class:`repro.dsim.process.ConfiguredFactory`, which the demo
        app builders use) — mutating class attributes in the parent does
        not cross the spawn boundary.
    """

    time_scale: float = 0.02
    flush_watermark: int = 64
    batch_deliveries: bool = True
    max_batch_messages: int = 128
    max_wall_seconds: float = 30.0
    transport: str = "pipe"
    ring_bytes: int = shm_ring.DEFAULT_RING_BYTES
    ring_write_timeout: float = 10.0
    start_method: Optional[str] = None

    def resolved_start_method(self) -> str:
        if self.start_method:
            return self.start_method
        if sys.platform.startswith("linux") and "fork" in mp.get_all_start_methods():
            return "fork"
        return "spawn"


def _mp_worker_main(
    pid: str,
    factory,
    all_pids: Tuple[str, ...],
    seed: int,
    conn,
    options: MPBackendOptions,
    check_invariants: bool,
    wall_limit: float,
    corruptions: List[Tuple[float, bytes]],
    msg_id_base: int,
    ring_handle=None,
) -> None:
    """Entry point of one worker process.

    The worker owns its :class:`Process` instance, services timers with
    wall-clock granularity, and talks to the parent router through a
    transport endpoint: the duplex pipe alone (``transport="pipe"``) or
    a shared-memory ring pair with the pipe demoted to control traffic
    (``transport="shm"``).  Outgoing messages, delivery receipts, timer
    firings and detected violations accumulate in a *flush buffer*
    shipped as one transport frame — per-sender FIFO order is preserved
    because the buffer is drained in append order.
    """
    from repro.dsim.message import reset_message_ids

    # each worker owns a disjoint msg_id range so ids stay cluster-unique
    # (the counter is interpreter-global; fork would otherwise clone it)
    reset_message_ids(msg_id_base)
    if ring_handle is None:
        endpoint = shm_ring.PipeEndpoint(conn)
    else:
        down_ring, up_ring, close_segments = ring_handle.attach()
        endpoint = shm_ring.ShmEndpoint(
            conn,
            send_ring=up_ring,
            recv_ring=down_ring,
            close_segments=close_segments,
            write_timeout=options.ring_write_timeout,
        )
    try:
        _mp_worker_loop(
            pid,
            factory,
            all_pids,
            seed,
            endpoint,
            options,
            check_invariants,
            wall_limit,
            corruptions,
        )
    finally:
        # drops the worker's segment mappings on every exit path;
        # the parent (segment owner) is the only side that unlinks
        endpoint.close()


def _mp_worker_loop(
    pid: str,
    factory,
    all_pids: Tuple[str, ...],
    seed: int,
    endpoint,
    options: MPBackendOptions,
    check_invariants: bool,
    wall_limit: float,
    corruptions: List[Tuple[float, bytes]],
) -> None:
    start = wall_time.monotonic()
    scale = options.time_scale
    watermark = max(1, options.flush_watermark)

    def sim_now() -> float:
        return (wall_time.monotonic() - start) / scale

    process = factory()
    timers: List[Tuple[float, int, str, Any]] = []
    timer_seq = 0
    crashed = False
    timer_fires = 0
    rng_draws = 0
    clock_reads = 0
    shipped_rng = 0
    shipped_clock = 0

    # flush buffer: ONE tagged log in occurrence order, so the router
    # replays sends, receipts, timer firings, violations and fault
    # events exactly as they interleaved inside the worker — hooks see
    # the same causal surface a simulator run would record.
    flush_log: List[Tuple] = []
    # sends, delivery receipts and violations all count toward the
    # watermark (bookkeeping entries don't): a receive-heavy worker under
    # sustained traffic still flushes regularly, bounding both its buffer
    # and the router's in-flight map, and violations ship promptly.
    pending_units = 0

    def flush() -> None:
        nonlocal flush_log, pending_units, shipped_rng, shipped_clock
        # recording depth: rng-draw / clock-read counters ride in the
        # flush payload as deltas, so both transports expose the same
        # observability surface without a side channel
        if rng_draws > shipped_rng or clock_reads > shipped_clock:
            flush_log.append(
                ("counters", rng_draws - shipped_rng, clock_reads - shipped_clock)
            )
            shipped_rng = rng_draws
            shipped_clock = clock_reads
        if not flush_log:
            return
        endpoint.send(("flush", pid, flush_log))
        flush_log = []
        pending_units = 0

    def note_unit() -> None:
        nonlocal pending_units
        pending_units += 1
        if pending_units >= watermark:
            flush()

    def send_fn(message: Message) -> None:
        flush_log.append(("sent", message))
        note_unit()

    def timer_fn(name: str, delay: float, payload: Any) -> None:
        nonlocal timer_seq
        timer_seq += 1
        heapq.heappush(timers, (wall_time.monotonic() + delay * scale, timer_seq, name, payload))

    def cancel_timer_fn(name: str) -> None:
        nonlocal timers
        timers = [entry for entry in timers if entry[2] != name]
        heapq.heapify(timers)

    def record_random(*_args) -> None:
        nonlocal rng_draws
        rng_draws += 1

    def record_clock(*_args) -> None:
        nonlocal clock_reads
        clock_reads += 1

    ctx = ProcessContext(
        pid=pid,
        peers=all_pids,
        send_fn=send_fn,
        timer_fn=timer_fn,
        cancel_timer_fn=cancel_timer_fn,
        now_fn=sim_now,
        rng=DeterministicRNG(derive_seed(seed, "process", pid)),
        record_random_fn=record_random,
        record_clock_fn=record_clock,
    )

    def after_handler() -> None:
        if not check_invariants or crashed:
            return
        try:
            process.check_invariants()
        except InvariantViolation as violation:
            flush_log.append(
                (
                    "violation",
                    violation.name,
                    violation.detail,
                    sim_now(),
                    process.vector_timestamp,
                )
            )
            note_unit()

    corruption_schedule = sorted(
        (at * scale + 0.0, blob) for at, blob in corruptions
    )
    corruption_index = 0

    error: Optional[str] = None
    stopping = False
    try:
        process.bind(ctx)
        process.on_start()
        flush_log.append(("handled", "on_start", sim_now()))
        after_handler()

        deadline = start + wall_limit
        while not stopping and wall_time.monotonic() < deadline:
            now_w = wall_time.monotonic()
            # injected state corruptions due at this wall moment
            while (
                corruption_index < len(corruption_schedule)
                and corruption_schedule[corruption_index][0] <= now_w - start
            ):
                _, blob = corruption_schedule[corruption_index]
                corruption_index += 1
                if not crashed:
                    fault: StateCorruptionFault = pickle.loads(blob)
                    fault.mutator(process.state)
                    flush_log.append(
                        ("event", "corrupt", fault.description, sim_now(), process.vector_timestamp)
                    )
                    flush_log.append(("handled", "corruption", sim_now()))
                    after_handler()
            # fire due timers
            while timers and timers[0][0] <= wall_time.monotonic() and not crashed:
                _, _, name, payload = heapq.heappop(timers)
                flush_log.append(("timer", name, sim_now(), process.vector_timestamp))
                process.fire_timer(name, payload)
                timer_fires += 1
                flush_log.append(("handled", f"timer {name}", sim_now()))
                after_handler()
            # wait for parent traffic until the next timer (or a short idle poll)
            timeout = 0.002
            if timers:
                timeout = min(timeout, max(0.0, timers[0][0] - wall_time.monotonic()))
            if corruption_index < len(corruption_schedule):
                due = corruption_schedule[corruption_index][0] - (wall_time.monotonic() - start)
                timeout = min(timeout, max(0.0, due))
            if not endpoint.poll(timeout):
                flush()  # idle: everything buffered goes out now
                continue
            for item in endpoint.drain():
                tag = item[0]
                if tag == "batch":
                    for tseq, message in item[1]:
                        if crashed:
                            flush_log.append(("dead", tseq))
                            continue
                        flush_log.append(("brecv", tseq, sim_now()))
                        process.deliver(message)
                        flush_log.append(("recv", tseq, sim_now(), process.vector_timestamp))
                        flush_log.append(("handled", f"deliver {message.kind}", sim_now()))
                        note_unit()
                        after_handler()
                elif tag == "crash":
                    if not crashed:
                        process.mark_crashed()
                        crashed = True
                        timers.clear()
                        flush_log.append(("event", "crash", "", sim_now(), process.vector_timestamp))
                        flush()
                elif tag == "recover":
                    if crashed:
                        process.mark_recovered()
                        crashed = False
                        flush_log.append(("event", "recover", "", sim_now(), process.vector_timestamp))
                        flush_log.append(("handled", "on_recover", sim_now()))
                        after_handler()
                        flush()
                elif tag == "probe":
                    flush()
                    endpoint.send_control(
                        (
                            "probe_ack",
                            pid,
                            item[1],
                            {
                                "sent_total": process.messages_sent,
                                "timers_armed": 0 if crashed else len(timers),
                                # scheduled-but-unfired corruptions count as
                                # armed work: the router must not quiesce past
                                # them (exact, clock-skew-free accounting)
                                "corruptions_pending": len(corruption_schedule) - corruption_index,
                                "crashed": crashed,
                            },
                        )
                    )
                elif tag == "stop":
                    stopping = True
                    break
    except EOFError:  # parent went away: nothing left to report to
        return
    except shm_ring.TransportError:  # parent stopped draining: same thing
        return
    except Exception as exc:  # noqa: BLE001 - shipped to the parent verbatim
        error = f"{type(exc).__name__}: {exc}"

    try:
        try:
            if not crashed and error is None:
                process.on_stop()
        except Exception as exc:  # noqa: BLE001 - must not lose the final state
            error = f"on_stop: {type(exc).__name__}: {exc}"
        flush()
        endpoint.send_control(
            (
                "result",
                pid,
                {
                    "state": dict(process.state),
                    "sent": process.messages_sent,
                    "received": process.messages_received,
                    "recorded": rng_draws + clock_reads,
                    "rng_draws": rng_draws,
                    "clock_reads": clock_reads,
                    "timer_fires": timer_fires,
                    "uplink_writes": endpoint.stats["sends"] + 1,  # counting this result write
                    "transport": dict(endpoint.stats),
                    "error": error,
                },
            )
        )
    except (
        EOFError,
        BrokenPipeError,
        OSError,
        shm_ring.TransportError,
    ):  # pragma: no cover - parent gone
        pass


class _ShmLink:
    """Parent-side handle on the shm transport: threadless, direct writes.

    The router thread writes data frames straight into the worker's
    down ring — non-blocking in the common case, so a batch costs no
    thread hop, no queue wakeup and no pipe syscall.  During ring
    backpressure the endpoint's wait hook *drains the uplinks* (the
    router is their only consumer), which preserves the no-deadlock
    argument the pipe transport gets from its sender threads: the
    router is never stuck in a write it cannot unblock itself.  The
    pipe carries only tiny bounded control items and coalesced nudges,
    so its direct blocking writes cannot fill the pipe buffer within a
    run's wall cap.
    """

    def __init__(self, endpoint, drain_hook, on_stalled=None) -> None:
        self.endpoint = endpoint
        self.writes = 0
        endpoint.wait_hook = drain_hook
        self._on_stalled = on_stalled

    def send(self, item) -> None:
        try:
            self.endpoint.send(item)
            self.writes += 1
        except shm_ring.RingBackpressureTimeout:
            # The worker is ALIVE but has not drained its ring for the
            # whole write timeout — dropping the frame silently would
            # strand its tseqs in in_flight until the wall cap.  Surface
            # the stall loudly instead (unless we are tearing down), and
            # flip the endpoint to closing so the remaining queued
            # batches for this destination abort immediately rather
            # than each paying the full timeout before halt is noticed.
            if not self.endpoint.closing and self._on_stalled is not None:
                self.endpoint.closing = True
                self._on_stalled()
        except (EOFError, BrokenPipeError, OSError, ValueError, shm_ring.TransportError):
            pass  # worker gone: the router loop detects the dead pipe

    def close(self, timeout: float = 2.0) -> None:
        self.endpoint.closing = True  # unblocks a backpressured ring write


class _WorkerLink:
    """Parent-side handle for one worker: its endpoint plus a sender thread.

    All router→worker writes go through a queue drained by a dedicated
    thread, so the router's main loop *never blocks on a transport
    write*.  This is what makes the transport deadlock-free under
    arbitrary payload sizes: a worker blocked mid-flush (its uplink
    full) is always eventually drained by the router loop, because the
    router is never itself stuck in ``send`` — at worst its sender
    thread is, and that thread unblocks as soon as the worker finishes
    flushing.  A worker that died simply absorbs the remaining queue
    (broken-pipe writes and timed-out ring writes are dropped, not
    raised into ``run()``); ``close`` flips the endpoint's ``closing``
    flag so even a backpressured ring write gives up promptly.
    """

    def __init__(self, endpoint) -> None:
        self.endpoint = endpoint
        self.writes = 0
        self._queue: "queue_module.SimpleQueue" = queue_module.SimpleQueue()
        self._thread = threading.Thread(target=self._pump, daemon=True)
        self._thread.start()

    _CLOSE = object()

    def _pump(self) -> None:
        while True:
            item = self._queue.get()
            if item is self._CLOSE:
                return
            try:
                self.endpoint.send(item)
                self.writes += 1
            except (BrokenPipeError, OSError, ValueError, shm_ring.TransportError):
                continue  # worker gone: keep draining so close() terminates

    def send(self, item) -> None:
        self._queue.put(item)

    def close(self, timeout: float = 2.0) -> None:
        self.endpoint.closing = True  # unblocks a backpressured ring write
        self._queue.put(self._CLOSE)
        self._thread.join(timeout=timeout)


class MPBackend(Backend):
    """Real OS processes behind the cluster API, with a batched transport.

    Limitations (documented, deliberate):

    * timers are serviced with wall-clock granularity, so runs are not
      bit-for-bit deterministic — which is exactly the nondeterminism
      the Scroll exists to capture;
    * crash injection is cooperative (the worker stops processing)
      rather than ``SIGKILL``, so final state can still be collected;
    * there is no frontend access to live process state, hence no
      checkpoint/rollback capability — FixD degrades to detection and
      reporting on this substrate;
    * ``max_events`` is not enforced (runs are wall-clock bounded);
    * ``halt_on_violation`` is asynchronous: the violating worker checks
      invariants in-process but the router only halts once the
      violation's flush arrives, so workers keep executing for a short
      window after the violation — final states reflect state at the
      (slightly later) halt, not at the violating handler as on the
      simulator.

    The run ends at *quiescence*, detected with a probe protocol: when
    the router has nothing queued, delayed or in flight and no fault
    events still scheduled, it probes every worker; a worker answers
    after draining its inbox (the pipe is FIFO) with its armed-timer and
    sent-message counters.  The system is quiescent when all answers
    agree with the router's own accounting and nothing new arrived
    during the round.
    """

    name = "mp"
    capabilities = frozenset({CAP_REAL_PROCESSES})

    def __init__(
        self,
        options: Optional[MPBackendOptions] = None,
        transport: Optional[str] = None,
    ) -> None:
        super().__init__()
        self.options = options or MPBackendOptions()
        if transport is not None:
            self.options = dataclass_replace(self.options, transport=transport)
        if self.options.transport not in TRANSPORTS:
            raise SimulationError(
                f"unknown mp transport {self.options.transport!r}; "
                f"expected one of {TRANSPORTS}"
            )
        self._now = 0.0
        self._fault_engine: Optional[MessageFaultEngine] = None
        #: transport accounting of the last run (the batching benchmark's metric)
        self.transport_stats: Dict[str, int] = {}
        #: per-worker counters of the last run (sent/received/recorded/...)
        self.worker_stats: Dict[str, Dict[str, int]] = {}
        #: shared-memory segment names of the last run (teardown tests)
        self.shm_segments: List[str] = []

    @property
    def now(self) -> float:
        return self._now

    @property
    def fault_engine(self) -> Optional[MessageFaultEngine]:
        return self._fault_engine

    def start(self) -> None:
        """No-op: workers are started inside :meth:`run`."""

    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None):
        from repro.dsim.cluster import RunResult

        cluster = self.cluster
        if cluster._started:
            raise SimulationError("the mp backend cannot re-enter a finished run")
        if max_events is not None:
            raise SimulationError(
                "the mp backend cannot enforce max_events (runs are wall-clock "
                "bounded); pass until= instead"
            )
        config = cluster.config
        options = self.options
        scale = options.time_scale

        pids = tuple(cluster.pids)
        factories = {}
        for pid in pids:
            factory = cluster.factory_for(pid)
            if factory is None:
                raise SimulationError(
                    f"process {pid!r} was registered as an instance; the mp backend "
                    "needs zero-argument factories to build workers"
                )
            factories[pid] = factory

        plan = cluster.failure_plan
        known_pids = set(pids)
        for crash in plan.crashes:
            if crash.pid not in known_pids:
                raise UnknownProcessError(crash.pid)
        for corruption in plan.corruptions:
            if corruption.pid not in known_pids:
                raise UnknownProcessError(corruption.pid)
        self._fault_engine = MessageFaultEngine(plan.message_faults)
        partitions = [p.to_partition() for p in plan.partitions]

        sim_limit = min(until if until is not None else config.max_time, config.max_time)
        wall_limit = min(sim_limit * scale, options.max_wall_seconds)

        # crash/recover schedule driven by the router (sorted by wall time)
        schedule: List[Tuple[float, int, str, str]] = []
        order = 0
        for crash in plan.crashes:
            schedule.append((crash.at * scale, order, "crash", crash.pid))
            order += 1
            if crash.recover_at is not None:
                schedule.append((crash.recover_at * scale, order, "recover", crash.pid))
                order += 1
        schedule.sort()
        corruptions_by_pid: Dict[str, List[Tuple[float, bytes]]] = {}
        for corruption in plan.corruptions:
            try:
                blob = pickle.dumps(corruption, protocol=pickle.HIGHEST_PROTOCOL)
            except Exception as exc:
                raise SimulationError(
                    "mp backend state-corruption faults must be picklable "
                    f"(mutator for {corruption.pid!r} is not: {exc})"
                ) from exc
            corruptions_by_pid.setdefault(corruption.pid, []).append((corruption.at, blob))

        # setup validated: the run is now committed (workers about to start)
        cluster._started = True
        use_shm = options.transport == "shm"
        ctx = mp.get_context(options.resolved_start_method())
        endpoints: Dict[str, Any] = {}
        all_endpoints: Dict[str, Any] = {}
        ring_pairs: Dict[str, shm_ring.RingPair] = {}
        links: Dict[str, _WorkerLink] = {}
        workers = []
        self.shm_segments = []
        start_wall = wall_time.monotonic()

        hooks = cluster.hooks

        # router state
        tseq_counter = 0
        in_flight: Dict[int, Tuple[str, Message]] = {}
        pending_out: Dict[str, List[Tuple[int, Message]]] = {pid: [] for pid in pids}
        delayed: List[Tuple[float, int, Message]] = []
        crashed_pids: set = set()
        schedule_index = 0
        parent_writes = 0
        routed = 0
        delivered_batches = 0
        max_batch = 0
        dropped = 0
        duplicated = 0
        dead_letters = 0
        uplink_messages = 0
        probe_seq = 0
        probe_round_dirty = True
        probe_acks: Dict[str, Dict[str, int]] = {}
        last_probe_at = -1.0
        #: minimum wall seconds between probe rounds; bounds the idle-churn
        #: writes while workers sit on long-armed timers
        probe_interval = 0.005
        results: Dict[str, Dict[str, Any]] = {}
        recording = {"rng_draws": 0, "clock_reads": 0}
        reason = "time-limit"

        def elapsed() -> float:
            return wall_time.monotonic() - start_wall

        def update_now() -> None:
            self._now = elapsed() / scale

        def enqueue(dst: str, message: Message) -> None:
            nonlocal tseq_counter, dead_letters, probe_round_dirty
            if dst not in pending_out:
                raise UnknownProcessError(dst)
            if dst in crashed_pids:
                dead_letters += 1
                cluster._record_trace(dst, "dead-letter", message.describe())
                return
            tseq_counter += 1
            in_flight[tseq_counter] = (dst, message)
            pending_out[dst].append((tseq_counter, message))
            probe_round_dirty = True

        def route(message: Message) -> None:
            nonlocal routed, dropped, duplicated
            routed += 1
            sent_at = message.send_time
            hooks.on_send(message.src, message, sent_at, message.vt)
            cluster._record_trace(message.src, "send", message.describe())
            fault = self._fault_engine.decide(message, sent_at)
            if fault is not None and fault.kind == "drop":
                dropped += 1
                hooks.on_drop(message, sent_at, message.vt)
                cluster._record_trace(message.src, "fault-drop", message.describe())
                return
            if any(p.active_at(sent_at) and p.separates(message.src, message.dst) for p in partitions):
                dropped += 1
                hooks.on_drop(message, sent_at, message.vt)
                cluster._record_trace(message.src, "drop", message.describe())
                return
            if fault is not None and fault.kind == "duplicate":
                duplicated += 1
                copy = message.as_duplicate()
                hooks.on_duplicate(copy, sent_at, message.vt)
                cluster._record_trace(copy.src, "duplicate", copy.describe())
                enqueue(copy.dst, copy)
            if fault is not None and fault.kind == "delay":
                heapq.heappush(
                    delayed, ((sent_at + fault.extra_delay) * scale, message.msg_id, message)
                )
                return
            enqueue(message.dst, message)

        def handle_flush(pid: str, log: List[Tuple]) -> None:
            """Replay one worker flush *in occurrence order*.

            The log interleaves sends, delivery receipts, timer firings,
            violations and fault events exactly as they happened inside
            the worker, so the hook chain (and therefore the Scroll and
            any bug-report tail) observes the same ordering a simulator
            run would produce.
            """
            nonlocal uplink_messages, probe_round_dirty
            update_now()
            for entry in log:
                tag = entry[0]
                if tag == "sent":
                    uplink_messages += 1
                    route(entry[1])
                elif tag == "brecv":
                    _, tseq, at = entry
                    dst, message = in_flight[tseq]
                    hooks.before_receive(dst, message, at)
                elif tag == "handled":
                    _, description, at = entry
                    hooks.after_handler(pid, description, at)
                elif tag == "recv":
                    _, tseq, at, vt = entry
                    dst, message = in_flight.pop(tseq)
                    cluster._record_trace(dst, "receive", message.describe())
                    hooks.on_receive(dst, message, at, vt)
                elif tag == "dead":
                    dst, message = in_flight.pop(entry[1])
                    cluster._record_trace(dst, "dead-letter", message.describe())
                elif tag == "timer":
                    _, name, at, vt = entry
                    cluster._record_trace(pid, "timer", name)
                    hooks.on_timer(pid, name, at, vt)
                elif tag == "violation":
                    _, name, detail, at, vt = entry
                    cluster._handle_violation(pid, name, detail, at, vt)
                elif tag == "event":
                    _, kind, detail, at, vt = entry
                    if kind == "crash":
                        cluster._record_trace(pid, "crash", "process crashed")
                        hooks.on_crash(pid, at, vt)
                    elif kind == "recover":
                        cluster._record_trace(pid, "recover", "process recovered")
                        hooks.on_recover(pid, at, vt)
                    elif kind == "corrupt":
                        cluster._record_trace(pid, "corrupt", detail)
                        hooks.on_corruption(pid, detail, at, vt)
                    probe_round_dirty = True
                elif tag == "counters":
                    # recording-depth deltas batched into the flush
                    recording["rng_draws"] += entry[1]
                    recording["clock_reads"] += entry[2]

        def handle_item(pid: str, item) -> None:
            nonlocal reason
            tag = item[0]
            if tag == "flush":
                handle_flush(item[1], item[2])
            elif tag == "probe_ack":
                if item[2] == probe_seq:
                    probe_acks[item[1]] = item[3]
            elif tag == "result":
                results[item[1]] = item[2]
                if item[2].get("error"):
                    cluster._record_trace(item[1], "error", item[2]["error"])
                    cluster.halt(f"worker-error:{item[1]}")
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unexpected uplink item {tag!r} from {pid!r}")

        conn_to_pid: Dict[Any, str] = {}
        run_started = False

        def drain_links(
            link_map: Dict[str, Any], idle_timeout: float, lost_is_error: bool
        ) -> None:
            """Drain every uplink in ``link_map`` (ring frames and pipe items).

            Dead peers are popped from ``link_map``; with
            ``lost_is_error`` a peer that died without delivering its
            result is recorded and halts the run (the router loop's
            policy — the post-run collect loop tolerates it).
            """
            if not link_map:
                # every uplink is gone; keep the loop's idle cadence
                # instead of busy-spinning until the wall limit
                wall_time.sleep(idle_timeout)
                return
            ready_pids = set()
            for p, ep in link_map.items():
                try:
                    if ep.data_ready():
                        ready_pids.add(p)
                except shm_ring.TransportError:
                    ready_pids.add(p)  # torn cursor: diagnose in the drain
            ready = mp_wait(
                [ep.conn for ep in link_map.values()],
                timeout=0.0 if ready_pids else idle_timeout,
            )
            ready_pids.update(conn_to_pid[conn] for conn in ready)
            for pid in sorted(ready_pids):
                endpoint = link_map.get(pid)
                if endpoint is None:
                    continue
                try:
                    for item in endpoint.drain():
                        handle_item(pid, item)
                except (EOFError, OSError, shm_ring.TransportError):
                    # The worker's pipe closed (or it died mid-publish and
                    # left a torn ring cursor).  Salvage any frames it
                    # committed to its ring before dying, drop it from
                    # the wait set (a closed pipe reports permanently
                    # ready and would busy-spin the router) and treat a
                    # death without a result as a lost worker.
                    try:
                        for item in endpoint.drain_data():
                            handle_item(pid, item)
                    except shm_ring.TransportError:
                        pass  # the ring itself is torn: nothing to salvage
                    link_map.pop(pid, None)
                    if lost_is_error and pid not in results:
                        cluster._record_trace(
                            pid, "error", "worker pipe closed unexpectedly"
                        )
                        cluster.halt(f"worker-lost:{pid}")

        def drain_uplinks(idle_timeout: float) -> None:
            """The router-loop drain: also re-entered from a backpressured
            ring write (see :class:`_ShmLink`), which is safe because
            routing never sends inline — routed messages only accumulate
            in ``pending_out``."""
            drain_links(endpoints, idle_timeout, lost_is_error=True)
        try:
            for index, pid in enumerate(pids):
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                ring_handle = None
                if use_shm:
                    pair = shm_ring.RingPair(options.ring_bytes)
                    ring_pairs[pid] = pair
                    self.shm_segments.extend(pair.segment_names)
                    ring_handle = pair.child_handle()
                worker = ctx.Process(
                    target=_mp_worker_main,
                    args=(
                        pid,
                        factories[pid],
                        pids,
                        config.seed,
                        child_conn,
                        options,
                        config.check_invariants,
                        wall_limit,
                        corruptions_by_pid.get(pid, []),
                        # disjoint per-worker msg_id ranges; the router (range
                        # below 10^9, used for injected duplicates) never collides
                        (index + 1) * 1_000_000_000,
                        ring_handle,
                    ),
                    daemon=True,
                )
                worker.start()
                child_conn.close()
                if use_shm:
                    endpoints[pid] = shm_ring.ShmEndpoint(
                        parent_conn,
                        send_ring=ring_pairs[pid].down_ring,
                        recv_ring=ring_pairs[pid].up_ring,
                        write_timeout=options.ring_write_timeout,
                    )
                else:
                    endpoints[pid] = shm_ring.PipeEndpoint(parent_conn)
                # registered as each is created, so a mid-spawn failure
                # still closes every pipe/segment in the finally below
                all_endpoints[pid] = endpoints[pid]
                conn_to_pid[parent_conn] = pid
                workers.append(worker)
            # The sender threads start only after every worker process exists:
            # forking a child while another link's thread may hold a lock is
            # the classic fork-with-threads hazard.  On the pipe transport
            # every write goes through the thread so the router loop (also
            # the only reader) can never block on a full pipe; on shm the
            # router writes rings directly and drains uplinks while
            # backpressured, with the thread reserved for pipe blobs.
            for pid, endpoint in endpoints.items():
                if use_shm:
                    def _stalled(stalled_pid=pid):
                        cluster._record_trace(
                            stalled_pid, "error",
                            "worker stopped draining its ring (stalled)",
                        )
                        cluster.halt(f"worker-stalled:{stalled_pid}")

                    links[pid] = _ShmLink(
                        endpoint, lambda: drain_uplinks(0.0005), on_stalled=_stalled
                    )
                else:
                    links[pid] = _WorkerLink(endpoint)

            hooks.on_run_start(0.0)
            run_started = True
            while True:
                update_now()
                if elapsed() >= wall_limit:
                    reason = "time-limit"
                    break
                if cluster._halted:
                    reason = cluster._halt_reason or "halted"
                    break
                # fault schedule (crash / recover control messages)
                while schedule_index < len(schedule) and schedule[schedule_index][0] <= elapsed():
                    _, _, kind, target = schedule[schedule_index]
                    schedule_index += 1
                    links[target].send((kind,))
                    if kind == "crash":
                        crashed_pids.add(target)
                        # in-flight deliveries to a crashed worker dead-letter
                        # inside the worker; stop queueing new ones here.
                    else:
                        crashed_pids.discard(target)
                    probe_round_dirty = True
                # delayed messages whose injection deadline passed
                while delayed and delayed[0][0] <= elapsed():
                    _, _, message = heapq.heappop(delayed)
                    enqueue(message.dst, message)
                # drain worker uplinks (ring frames and pipe items alike;
                # ring senders nudge the pipe, so the wait wakes for both)
                drain_uplinks(0.002)
                # ship this tick's deliveries, one batch per destination.
                # Swap the batch list out FIRST: a backpressured ring write
                # re-enters drain_uplinks, whose routing may enqueue new
                # deliveries for this very destination — they must land in
                # the fresh list (next tick), not be dropped with the old.
                for dst in pending_out:
                    batch = pending_out[dst]
                    if not batch:
                        continue
                    pending_out[dst] = []
                    if options.batch_deliveries:
                        for cut in range(0, len(batch), options.max_batch_messages):
                            piece = batch[cut:cut + options.max_batch_messages]
                            links[dst].send(("batch", piece))
                            delivered_batches += 1
                            max_batch = max(max_batch, len(piece))
                    else:
                        for entry in batch:
                            links[dst].send(("batch", [entry]))
                            delivered_batches += 1
                            max_batch = max(max_batch, 1)
                # quiescence detection
                busy = (
                    in_flight
                    or delayed
                    or schedule_index < len(schedule)
                    or any(pending_out.values())
                )
                if busy:
                    probe_acks.clear()
                    probe_round_dirty = True
                    continue
                if probe_round_dirty or len(probe_acks) < len(pids):
                    if probe_round_dirty and elapsed() - last_probe_at >= probe_interval:
                        probe_seq += 1
                        probe_acks.clear()
                        probe_round_dirty = False
                        last_probe_at = elapsed()
                        for link in links.values():
                            link.send(("probe", probe_seq))
                    continue
                sent_total = sum(ack["sent_total"] for ack in probe_acks.values())
                armed = sum(
                    ack["timers_armed"] + ack.get("corruptions_pending", 0)
                    for ack in probe_acks.values()
                )
                if sent_total == uplink_messages and armed == 0 and not in_flight:
                    reason = "quiescent"
                    break
                # workers still have armed timers or scheduled corruptions
                # (or a flush is in transit): fresh round on the next pass
                probe_round_dirty = True
        finally:
            update_now()
            try:
                for link in links.values():
                    link.send(("stop",))
                # collect results (late flushes keep hooks complete)
                collect_deadline = wall_time.monotonic() + 5.0
                live = dict(endpoints)
                while len(results) < len(pids) and wall_time.monotonic() < collect_deadline:
                    if not live:
                        break
                    drain_links(live, 0.1, lost_is_error=False)
                # a final flush can land in the ring just before the pipe
                # carries its worker's result: one last in-order sweep
                for pid, endpoint in all_endpoints.items():
                    try:
                        for item in endpoint.drain_data():
                            handle_item(pid, item)
                    except shm_ring.TransportError:
                        pass  # dead worker left a torn cursor
            finally:
                # reclamation must survive any error above (including a
                # KeyboardInterrupt mid-run): sender threads, workers,
                # pipes, and — on the shm transport — every segment.
                for link in links.values():
                    link.close()
                parent_writes = sum(link.writes for link in links.values())
                for worker in workers:
                    worker.join(timeout=2.0)
                    if worker.is_alive():  # pragma: no cover - defensive cleanup
                        worker.terminate()
                        worker.join(timeout=1.0)
                for endpoint in all_endpoints.values():  # incl. dropped pids
                    endpoint.close()
                for pair in ring_pairs.values():
                    pair.close()
                if run_started:  # never fire an end without its start
                    hooks.on_run_end(self._now)

        # a worker error discovered while collecting results (e.g. a failing
        # on_stop) must not masquerade as a clean quiescent run
        if reason == "quiescent":
            for pid, result in results.items():
                if result.get("error"):
                    reason = f"worker-error:{pid}"
                    break
        worker_writes = sum(result.get("uplink_writes", 0) for result in results.values())
        self.worker_stats = results
        # both transports account serialization the same way: parent-side
        # endpoint counters plus the per-worker counters shipped in results
        codec = shm_ring.new_stats()
        for endpoint in all_endpoints.values():
            for key, value in endpoint.stats.items():
                codec[key] += value
        for result in results.values():
            for key, value in result.get("transport", {}).items():
                codec[key] += value
        self.transport_stats = {
            "messages_routed": routed,
            "messages_delivered": sum(r.get("received", 0) for r in results.values()),
            "dropped": dropped,
            "duplicated": duplicated,
            "dead_letters": dead_letters,
            "parent_pipe_writes": parent_writes,
            "worker_pipe_writes": worker_writes,
            "pipe_writes": parent_writes + worker_writes,
            "delivery_batches": delivered_batches,
            "max_batch": max_batch,
            # serialization accounting (identical keys on pipe and shm)
            "pickled_bytes": codec["pickled_bytes"],
            "ring_frames": codec["ring_frames"],
            "ring_bytes": codec["ring_bytes"],
            "oversize_frames": codec["oversize_frames"],
            "nudges": codec["nudges"],
            "messages_fast": codec["messages_fast"],
            "messages_pickled": codec["messages_pickled"],
            # recording depth: per-worker counters batched into flushes
            "rng_draws": recording["rng_draws"],
            "clock_reads": recording["clock_reads"],
        }
        events = sum(
            result.get("received", 0) + result.get("timer_fires", 0)
            for result in results.values()
        )
        return RunResult(
            events_executed=events,
            final_time=self._now,
            stopped_reason=reason,
            violations=list(cluster._violations),
            network_stats={
                "delivered": sum(r.get("received", 0) for r in results.values()),
                "dropped": dropped,
                "duplicated": duplicated,
            },
            process_states={
                pid: dict(result.get("state", {})) for pid, result in results.items()
            },
            trace=list(cluster._trace),
        )
