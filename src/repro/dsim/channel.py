"""Point-to-point channels with configurable fault behaviour.

A channel connects an ordered pair of processes.  Its behaviour —
latency, loss, duplication, reordering — is sampled from the *network's*
deterministic RNG stream, so channel faults are themselves reproducible
nondeterministic actions that the Scroll can record and the replayer can
re-impose.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Tuple

from repro.dsim.message import Message
from repro.dsim.rng import DeterministicRNG


class DeliveryOutcome(Enum):
    """What the channel decided to do with a message."""

    DELIVER = "deliver"
    DROP = "drop"
    DUPLICATE = "duplicate"


@dataclass
class ChannelConfig:
    """Behavioural parameters of a single channel.

    Attributes
    ----------
    base_delay:
        Fixed propagation delay added to every message.
    jitter:
        Maximum additional random delay (uniform in ``[0, jitter]``);
        non-zero jitter produces message reordering between a pair of
        processes unless ``fifo`` is set.
    drop_rate, duplicate_rate:
        Probabilities of dropping or duplicating each message.
    fifo:
        When true, delivery times are forced to be non-decreasing per
        channel so the channel behaves like TCP; when false the channel
        behaves like UDP and can reorder.
    """

    base_delay: float = 1.0
    jitter: float = 0.0
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    fifo: bool = True

    def validate(self) -> None:
        if self.base_delay < 0:
            raise ValueError("base_delay must be non-negative")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")
        for name in ("drop_rate", "duplicate_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability in [0, 1]")


class Channel:
    """A unidirectional channel from ``src`` to ``dst``.

    The channel does not hold messages itself — the scheduler owns the
    event queue — it only decides *when* and *whether* each message is
    delivered, and reports that decision so it can be logged.
    """

    def __init__(self, src: str, dst: str, config: ChannelConfig, rng: DeterministicRNG) -> None:
        config.validate()
        self.src = src
        self.dst = dst
        self.config = config
        self._rng = rng
        self._last_delivery_time = 0.0
        self._sent = 0
        self._dropped = 0
        self._duplicated = 0

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    @property
    def stats(self) -> Tuple[int, int, int]:
        """Return ``(sent, dropped, duplicated)`` counters."""
        return self._sent, self._dropped, self._duplicated

    # ------------------------------------------------------------------
    # continuation support
    # ------------------------------------------------------------------
    def state_snapshot(self) -> dict:
        """The channel's replay-relevant position as plain data.

        Covers exactly what a continuation cannot rebuild from the
        checkpointed process states: the RNG draw position (how far into
        the channel's deterministic jitter/loss stream the run got) and
        the FIFO delivery watermark.  The traffic counters are excluded
        on purpose — they are reporting, not behaviour.
        """
        return {
            "rng_draws": self._rng.draws,
            "last_delivery_time": self._last_delivery_time,
        }

    def restore_state(self, snapshot: dict) -> None:
        """Fast-forward this channel to a persisted :meth:`state_snapshot`."""
        self._rng.restore(int(snapshot.get("rng_draws", 0)))
        self._last_delivery_time = float(snapshot.get("last_delivery_time", 0.0))

    # ------------------------------------------------------------------
    # behaviour
    # ------------------------------------------------------------------
    def plan_delivery(
        self, message: Message, now: float, partitioned: bool = False
    ) -> List[Tuple[DeliveryOutcome, Optional[float], Message]]:
        """Decide the fate of ``message`` sent at time ``now``.

        Returns a list of ``(outcome, delivery_time, message)`` tuples:
        an empty delivery time accompanies :attr:`DeliveryOutcome.DROP`.
        A duplicated message yields two entries — the original and a
        copy flagged with :attr:`Message.duplicate_of`.

        ``partitioned`` is decided by the network layer (partitions are a
        property of the topology, not of a single channel) and forces a
        drop without consuming randomness, so injecting a partition does
        not perturb the rest of the schedule.
        """
        self._sent += 1
        if partitioned:
            self._dropped += 1
            return [(DeliveryOutcome.DROP, None, message)]

        outcomes: List[Tuple[DeliveryOutcome, Optional[float], Message]] = []

        if self.config.drop_rate > 0 and self._rng.random() < self.config.drop_rate:
            self._dropped += 1
            return [(DeliveryOutcome.DROP, None, message)]

        delivery_time = self._delivery_time(now)
        outcomes.append((DeliveryOutcome.DELIVER, delivery_time, message))

        if self.config.duplicate_rate > 0 and self._rng.random() < self.config.duplicate_rate:
            self._duplicated += 1
            copy = message.as_duplicate()
            outcomes.append((DeliveryOutcome.DUPLICATE, self._delivery_time(now), copy))

        return outcomes

    def _delivery_time(self, now: float) -> float:
        """Sample an absolute delivery time, honouring FIFO ordering if configured."""
        delay = self.config.base_delay
        if self.config.jitter > 0:
            delay += self._rng.random() * self.config.jitter
        delivery_time = now + delay
        if self.config.fifo:
            # enforce non-decreasing delivery times per channel (TCP-like behaviour)
            delivery_time = max(delivery_time, self._last_delivery_time)
            self._last_delivery_time = delivery_time
        return delivery_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Channel({self.src}->{self.dst})"
