"""The cluster frontend: processes + hooks + policy over a pluggable backend.

:class:`Cluster` is the single entry point applications and the FixD
runtime use to execute a distributed computation.  Since the Backend
refactor it is a thin *frontend*: it owns what is substrate-independent —
the process table, the hook chain through which the Scroll, the Time
Machine and the fault detector observe the run, the failure plan, the
violation policy and the run trace — and delegates execution to a
:class:`~repro.dsim.backend.Backend`:

* :class:`~repro.dsim.backend.SimBackend` (the default) executes the
  deterministic discrete-event simulation (scheduler + network +
  channels);
* :class:`~repro.dsim.backend.MPBackend` runs the same process classes
  on real OS processes, over a batched pipe transport or zero-pickle
  shared-memory rings (``transport="pipe"|"shm"``).

Both backends accept the same registration surface (``add_process``,
``add_hook``, ``set_failure_plan``, ``register_scroll``) and the same
``run()`` entry point, and report through the same :class:`RunResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Union

from repro.dsim.clock import VectorTimestamp
from repro.dsim.failure import FailurePlan
from repro.dsim.hooks import HookChain, RuntimeHook
from repro.dsim.network import NetworkConfig
from repro.dsim.process import Process, ProcessCheckpoint
from repro.errors import InvariantViolation, SimulationError, UnknownProcessError

ProcessFactory = Callable[[], Process]


@dataclass
class ClusterConfig:
    """Run-wide configuration.

    Attributes
    ----------
    seed:
        Root seed from which every per-process and per-channel random
        stream is derived.
    max_time / max_events:
        Hard limits on simulation time and executed events; a run that
        hits either limit reports ``stopped_reason`` accordingly.
    network:
        Default channel behaviour (delay, jitter, loss, ...).  Only
        meaningful on the simulator backend; real processes talk over
        pipes with no injected latency.
    check_invariants:
        When true (the default), every process's declared invariants are
        evaluated after each of its handlers — this is FixD's fault
        detection point.  Honoured by both backends (the multiprocessing
        workers check in-process and report violations to the parent).
    halt_on_violation:
        When true, an unhandled invariant violation stops the run and is
        reported in the result; when false, the violation is recorded
        and the run continues (useful to collect several violations).
    raise_on_violation:
        When true, an unhandled violation is re-raised to the caller
        instead of being recorded.  Mostly used by small unit tests.
    """

    seed: int = 0
    max_time: float = 1_000_000.0
    max_events: int = 1_000_000
    network: NetworkConfig = field(default_factory=NetworkConfig)
    check_invariants: bool = True
    halt_on_violation: bool = True
    raise_on_violation: bool = False


@dataclass
class ViolationRecord:
    """An invariant violation observed during a run."""

    pid: str
    invariant: str
    detail: str
    time: float
    handled: bool


@dataclass
class TraceRecord:
    """One line of the cluster's built-in execution trace."""

    time: float
    pid: str
    action: str
    detail: str


@dataclass
class RunResult:
    """Summary of a completed (or halted) run — identical for both backends."""

    events_executed: int
    final_time: float
    stopped_reason: str
    violations: List[ViolationRecord]
    network_stats: Dict[str, int]
    process_states: Dict[str, Dict[str, Any]]
    trace: List[TraceRecord]

    @property
    def ok(self) -> bool:
        """True when the run completed with no unhandled violations."""
        return not any(not v.handled for v in self.violations)

    def violations_for(self, pid: str) -> List[ViolationRecord]:
        return [v for v in self.violations if v.pid == pid]


def _resolve_backend(spec):
    """Turn a backend spec (None, "sim", "mp", "net", or an instance) into a Backend."""
    # Imported lazily: backend.py needs this module's dataclasses.
    from repro.dsim.backend import Backend, MPBackend, SimBackend

    if spec is None or spec == "sim":
        return SimBackend()
    if spec == "mp":
        return MPBackend()
    if spec == "net":
        from repro.dsim.net_backend import NetBackend

        return NetBackend()
    if isinstance(spec, Backend):
        return spec
    raise SimulationError(
        f"unknown backend {spec!r}; expected 'sim', 'mp', 'net' or a Backend instance"
    )


class Cluster:
    """A cluster of communicating processes over a pluggable backend."""

    def __init__(
        self,
        config: Optional[ClusterConfig] = None,
        backend: Union[None, str, "object"] = None,
    ) -> None:
        self.config = config or ClusterConfig()
        self.hooks = HookChain()
        self._processes: Dict[str, Process] = {}
        self._factories: Dict[str, ProcessFactory] = {}
        self._failure_plan = FailurePlan()
        self._violations: List[ViolationRecord] = []
        self._trace: List[TraceRecord] = []
        self._halted = False
        self._halt_reason = ""
        self._started = False
        self._scroll = None
        self.backend = _resolve_backend(backend)
        self.backend.bind(self)
        #: computed once: whether the frontend instances carry live state
        #: (checked on every process() call — the simulator's hot path)
        self._frontend_state_live = "checkpoint" in getattr(
            self.backend, "capabilities", frozenset()
        )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_process(self, pid: str, process: Union[Process, ProcessFactory]) -> Process:
        """Register a process (an instance or a zero-argument factory)."""
        if self._started:
            raise SimulationError("cannot add processes after the run has started")
        if pid in self._processes:
            raise SimulationError(f"duplicate process id {pid!r}")
        instance = process() if callable(process) and not isinstance(process, Process) else process
        if not isinstance(instance, Process):
            raise TypeError("add_process expects a Process instance or factory")
        self._processes[pid] = instance
        if callable(process) and not isinstance(process, Process):
            self._factories[pid] = process  # kept for restart-from-scratch recovery
        self.backend.register_process(pid)
        return instance

    def add_processes(self, prefix: str, count: int, factory: ProcessFactory) -> List[str]:
        """Register ``count`` processes named ``prefix0 .. prefixN-1``."""
        pids = []
        for index in range(count):
            pid = f"{prefix}{index}"
            self.add_process(pid, factory)
            pids.append(pid)
        return pids

    def add_hook(self, hook: RuntimeHook) -> None:
        """Install a runtime hook (Scroll recorder, checkpoint policy, ...)."""
        self.hooks.add(hook)
        hook.attach(self)

    def set_failure_plan(self, plan: FailurePlan) -> None:
        """Install the fault-injection plan for this run (both backends)."""
        self._failure_plan = plan

    @property
    def failure_plan(self) -> FailurePlan:
        """The fault-injection plan installed for this run."""
        return self._failure_plan

    def factory_for(self, pid: str) -> Optional[ProcessFactory]:
        """The zero-argument factory ``pid`` was registered with, if any."""
        return self._factories.get(pid)

    def register_scroll(self, scroll) -> None:
        """Make the run's Scroll known to the cluster.

        The Scroll recorder calls this on attach.  Knowing the log lets
        checkpoints record the Scroll position at capture time (so a
        rollback can truncate both storage tiers to the recovery line)
        and lets :class:`~repro.timemachine.rollback.RollbackManager`
        find the log to truncate.
        """
        self._scroll = scroll

    @property
    def scroll(self):
        """The Scroll registered for this run, if any."""
        return self._scroll

    def scroll_position(self) -> Optional[int]:
        """Current end position of the registered Scroll (None when unset)."""
        return len(self._scroll) if self._scroll is not None else None

    # ------------------------------------------------------------------
    # backend delegation
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.backend.now

    @property
    def scheduler(self):
        """The deterministic scheduler (simulator backend only)."""
        return self.backend.scheduler

    @property
    def network(self):
        """The simulated network (simulator backend only)."""
        return self.backend.network

    @property
    def fault_engine(self):
        """The message-fault engine for this run (None before ``start``).

        Its :meth:`~repro.dsim.failure.MessageFaultEngine.hit_counts`
        are the ground truth for "did the injected message fault fire",
        which matters for fault kinds the Scroll has no entry for
        (delays).  Available on both backends.
        """
        return self.backend.fault_engine

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def pids(self) -> List[str]:
        return sorted(self._processes)

    def _check_frontend_state_access(self) -> None:
        """Fail loudly when the backend holds process state out of reach.

        On substrates without the ``checkpoint`` capability (real OS
        processes) the frontend's instances are never-executed
        prototypes — returning them after the run started would silently
        hand back empty state where the simulator hands back live state.
        Callers there must read ``RunResult.process_states`` instead.
        """
        if self._frontend_state_live or not self._started:
            return
        raise SimulationError(
            f"process state lives inside the {self.backend.name} backend's workers; "
            "read RunResult.process_states instead of the frontend instances"
        )

    def process(self, pid: str) -> Process:
        if not self._frontend_state_live:
            self._check_frontend_state_access()
        try:
            return self._processes[pid]
        except KeyError:
            raise UnknownProcessError(pid) from None

    def processes(self) -> Dict[str, Process]:
        self._check_frontend_state_access()
        return dict(self._processes)

    @property
    def violations(self) -> List[ViolationRecord]:
        return list(self._violations)

    @property
    def trace(self) -> List[TraceRecord]:
        return list(self._trace)

    # ------------------------------------------------------------------
    # shared plumbing used by backends
    # ------------------------------------------------------------------
    def _vt_of(self, pid: str):
        """Vector timestamp carried in hook payloads (None for unknown pids)."""
        process = self._processes.get(pid)
        return process.vector_timestamp if process is not None else None

    def _record_trace(self, pid: str, action: str, detail: str) -> None:
        self._trace.append(TraceRecord(self.backend.now, pid, action, detail))

    def _handle_violation(
        self,
        pid: str,
        name: str,
        detail: str,
        time: float,
        vt=None,
        exc: Optional[InvariantViolation] = None,
    ) -> bool:
        """Apply the violation policy (shared by both backends).

        Notifies the hook chain (which is where the FixD fault detector
        and its responders live), records the violation, and applies the
        configured raise/halt policy when no hook handled it.  Returns
        whether the violation was handled.
        """
        handled = bool(self.hooks.on_invariant_violation(pid, name, detail, time, vt))
        self._violations.append(ViolationRecord(pid, name, detail, time, handled))
        self._record_trace(pid, "violation", f"{name}: {detail}")
        if handled:
            return True
        if self.config.raise_on_violation:
            raise exc if exc is not None else InvariantViolation(name, pid, detail)
        if self.config.halt_on_violation:
            self.halt(f"invariant-violation:{name}@{pid}")
        return False

    def _after_handler(self, pid: str, description: str) -> None:
        """Post-handler bookkeeping: invariant checks and hook notification."""
        now = self.backend.now
        self.hooks.after_handler(pid, description, now)
        if not self.config.check_invariants:
            return
        process = self.process(pid)
        try:
            process.check_invariants()
        except InvariantViolation as violation:
            self._handle_violation(
                pid,
                violation.name,
                violation.detail,
                now,
                process.vector_timestamp,
                exc=violation,
            )

    # ------------------------------------------------------------------
    # run control
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Bind contexts, install the fault plan and run every ``on_start``."""
        if self._started:
            return
        if not self._processes:
            raise SimulationError("cannot run an empty cluster")
        self.backend.start()

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> RunResult:
        """Run the cluster until quiescence, a limit, or a halting violation."""
        if not self._processes:
            raise SimulationError("cannot run an empty cluster")
        return self.backend.run(until=until, max_events=max_events)

    def halt(self, reason: str = "halted") -> None:
        """Stop the run loop after the current event."""
        self._halted = True
        self._halt_reason = reason

    def resume(self) -> None:
        """Clear a previous halt so the run loop can be re-entered."""
        self._halted = False
        self._halt_reason = ""

    # ------------------------------------------------------------------
    # checkpointing / rollback support used by the Time Machine and FixD
    # ------------------------------------------------------------------
    def capture_checkpoint(self, pid: str) -> ProcessCheckpoint:
        """Snapshot one process's local state at the current time."""
        return self.process(pid).capture_checkpoint(self.backend.now)

    def capture_all(self) -> Dict[str, ProcessCheckpoint]:
        """Snapshot every live process (a *local* checkpoint set, not yet a recovery line)."""
        return {pid: self.capture_checkpoint(pid) for pid in self.pids}

    def restore_checkpoints(
        self, checkpoints: Dict[str, ProcessCheckpoint], clear_in_flight: bool = True
    ) -> None:
        """Restore a set of per-process checkpoints (a rollback).

        ``clear_in_flight`` cancels all pending deliveries and timers for
        the restored processes — messages sent after the restored states
        no longer exist in the rolled-back world.
        """
        for pid, checkpoint in checkpoints.items():
            process = self.process(pid)
            process.restore_checkpoint(checkpoint)
            if clear_in_flight:
                self.backend.clear_in_flight(pid)
            self._record_trace(pid, "rollback", f"restored checkpoint #{checkpoint.sequence}")

    def restart_process(self, pid: str) -> Process:
        """Replace a process with a brand new instance (restart-from-scratch).

        Only possible for processes registered through a factory.
        """
        factory = self._factories.get(pid)
        if factory is None:
            raise SimulationError(
                f"process {pid!r} was registered as an instance; restart-from-scratch "
                "requires a factory"
            )
        fresh = factory()
        self._processes[pid] = fresh
        fresh.bind(self.backend.make_context(pid))
        self.backend.clear_in_flight(pid)
        fresh.on_start()
        self._record_trace(pid, "restart", "restarted from initial state")
        return fresh

    def global_vector_time(self) -> Dict[str, VectorTimestamp]:
        """Current vector timestamp of every process."""
        return {pid: process.vector_timestamp for pid, process in self._processes.items()}
