"""The cluster: processes + network + scheduler + hooks, run to completion.

:class:`Cluster` is the single entry point applications and the FixD
runtime use to execute a distributed computation.  It owns the
deterministic scheduler, the network, one context per process and the
hook chain through which the Scroll, the Time Machine and the fault
detector observe the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.dsim.channel import DeliveryOutcome
from repro.dsim.clock import VectorTimestamp
from repro.dsim.failure import (
    CrashFault,
    FailurePlan,
    MessageFault,
    MessageFaultEngine,
    StateCorruptionFault,
)
from repro.dsim.hooks import HookChain, RuntimeHook
from repro.dsim.message import Message
from repro.dsim.network import Network, NetworkConfig
from repro.dsim.process import Process, ProcessCheckpoint, ProcessContext
from repro.dsim.rng import DeterministicRNG, derive_seed
from repro.dsim.scheduler import Event, EventKind, Scheduler
from repro.errors import InvariantViolation, SimulationError, UnknownProcessError

ProcessFactory = Callable[[], Process]


@dataclass
class ClusterConfig:
    """Run-wide configuration.

    Attributes
    ----------
    seed:
        Root seed from which every per-process and per-channel random
        stream is derived.
    max_time / max_events:
        Hard limits on simulation time and executed events; a run that
        hits either limit reports ``stopped_reason`` accordingly.
    network:
        Default channel behaviour (delay, jitter, loss, ...).
    check_invariants:
        When true (the default), every process's declared invariants are
        evaluated after each of its handlers — this is FixD's fault
        detection point.
    halt_on_violation:
        When true, an unhandled invariant violation stops the run and is
        reported in the result; when false, the violation is recorded
        and the run continues (useful to collect several violations).
    raise_on_violation:
        When true, an unhandled violation is re-raised to the caller
        instead of being recorded.  Mostly used by small unit tests.
    """

    seed: int = 0
    max_time: float = 1_000_000.0
    max_events: int = 1_000_000
    network: NetworkConfig = field(default_factory=NetworkConfig)
    check_invariants: bool = True
    halt_on_violation: bool = True
    raise_on_violation: bool = False


@dataclass
class ViolationRecord:
    """An invariant violation observed during a run."""

    pid: str
    invariant: str
    detail: str
    time: float
    handled: bool


@dataclass
class TraceRecord:
    """One line of the cluster's built-in execution trace."""

    time: float
    pid: str
    action: str
    detail: str


@dataclass
class RunResult:
    """Summary of a completed (or halted) run."""

    events_executed: int
    final_time: float
    stopped_reason: str
    violations: List[ViolationRecord]
    network_stats: Dict[str, int]
    process_states: Dict[str, Dict[str, Any]]
    trace: List[TraceRecord]

    @property
    def ok(self) -> bool:
        """True when the run completed with no unhandled violations."""
        return not any(not v.handled for v in self.violations)

    def violations_for(self, pid: str) -> List[ViolationRecord]:
        return [v for v in self.violations if v.pid == pid]


class Cluster:
    """A simulated cluster of communicating processes."""

    def __init__(self, config: Optional[ClusterConfig] = None) -> None:
        self.config = config or ClusterConfig()
        self.scheduler = Scheduler()
        self.network = Network(self.config.network, seed=derive_seed(self.config.seed, "network"))
        self.hooks = HookChain()
        self._processes: Dict[str, Process] = {}
        self._factories: Dict[str, ProcessFactory] = {}
        self._failure_plan = FailurePlan()
        self._fault_engine: Optional[MessageFaultEngine] = None
        self._violations: List[ViolationRecord] = []
        self._trace: List[TraceRecord] = []
        self._halted = False
        self._halt_reason = ""
        self._started = False
        self._timer_events: Dict[Tuple[str, str], List[Event]] = {}
        self._scroll = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_process(self, pid: str, process: Union[Process, ProcessFactory]) -> Process:
        """Register a process (an instance or a zero-argument factory)."""
        if self._started:
            raise SimulationError("cannot add processes after the run has started")
        if pid in self._processes:
            raise SimulationError(f"duplicate process id {pid!r}")
        instance = process() if callable(process) and not isinstance(process, Process) else process
        if not isinstance(instance, Process):
            raise TypeError("add_process expects a Process instance or factory")
        self._processes[pid] = instance
        if callable(process) and not isinstance(process, Process):
            self._factories[pid] = process  # kept for restart-from-scratch recovery
        self.network.register_process(pid)
        return instance

    def add_processes(self, prefix: str, count: int, factory: ProcessFactory) -> List[str]:
        """Register ``count`` processes named ``prefix0 .. prefixN-1``."""
        pids = []
        for index in range(count):
            pid = f"{prefix}{index}"
            self.add_process(pid, factory)
            pids.append(pid)
        return pids

    def add_hook(self, hook: RuntimeHook) -> None:
        """Install a runtime hook (Scroll recorder, checkpoint policy, ...)."""
        self.hooks.add(hook)
        hook.attach(self)

    def set_failure_plan(self, plan: FailurePlan) -> None:
        """Install the fault-injection plan for this run."""
        self._failure_plan = plan

    def register_scroll(self, scroll) -> None:
        """Make the run's Scroll known to the cluster.

        The Scroll recorder calls this on attach.  Knowing the log lets
        checkpoints record the Scroll position at capture time (so a
        rollback can truncate both storage tiers to the recovery line)
        and lets :class:`~repro.timemachine.rollback.RollbackManager`
        find the log to truncate.
        """
        self._scroll = scroll

    @property
    def scroll(self):
        """The Scroll registered for this run, if any."""
        return self._scroll

    def scroll_position(self) -> Optional[int]:
        """Current end position of the registered Scroll (None when unset)."""
        return len(self._scroll) if self._scroll is not None else None

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.scheduler.now

    @property
    def pids(self) -> List[str]:
        return sorted(self._processes)

    def process(self, pid: str) -> Process:
        try:
            return self._processes[pid]
        except KeyError:
            raise UnknownProcessError(pid) from None

    def processes(self) -> Dict[str, Process]:
        return dict(self._processes)

    @property
    def violations(self) -> List[ViolationRecord]:
        return list(self._violations)

    @property
    def fault_engine(self) -> Optional[MessageFaultEngine]:
        """The message-fault engine for this run (None before ``start``).

        Its :meth:`~repro.dsim.failure.MessageFaultEngine.hit_counts`
        are the ground truth for "did the injected message fault fire",
        which matters for fault kinds the Scroll has no entry for
        (delays).
        """
        return self._fault_engine

    @property
    def trace(self) -> List[TraceRecord]:
        return list(self._trace)

    # ------------------------------------------------------------------
    # process context plumbing
    # ------------------------------------------------------------------
    def _make_context(self, pid: str) -> ProcessContext:
        all_pids = tuple(sorted(self._processes))
        rng = DeterministicRNG(derive_seed(self.config.seed, "process", pid))
        return ProcessContext(
            pid=pid,
            peers=all_pids,
            send_fn=self._submit_message,
            timer_fn=lambda name, delay, payload, _pid=pid: self._set_timer(_pid, name, delay, payload),
            cancel_timer_fn=lambda name, _pid=pid: self._cancel_timer(_pid, name),
            now_fn=lambda: self.scheduler.now,
            rng=rng,
            record_random_fn=lambda p, method, value: self.hooks.on_random(
                p, method, value, self.scheduler.now, self._vt_of(p)
            ),
            record_clock_fn=lambda p, value: self.hooks.on_clock_read(
                p, value, self._vt_of(p)
            ),
            log_fn=lambda p, text: self._record_trace(p, "log", text),
            scroll_position_fn=self.scroll_position,
        )

    def _vt_of(self, pid: str):
        """Vector timestamp carried in hook payloads (None for unknown pids)."""
        process = self._processes.get(pid)
        return process.vector_timestamp if process is not None else None

    def _record_trace(self, pid: str, action: str, detail: str) -> None:
        self._trace.append(TraceRecord(self.scheduler.now, pid, action, detail))

    # ------------------------------------------------------------------
    # messaging and timers
    # ------------------------------------------------------------------
    def _submit_message(self, message: Message) -> None:
        now = self.scheduler.now
        sender_vt = self._vt_of(message.src)
        self.hooks.on_send(message.src, message, now, sender_vt)
        self._record_trace(message.src, "send", message.describe())

        fault = self._fault_engine.decide(message, now) if self._fault_engine else None
        if fault is not None and fault.kind == "drop":
            self.hooks.on_drop(message, now, sender_vt)
            self._record_trace(message.src, "fault-drop", message.describe())
            return

        plans = self.network.route(message, now)
        for outcome, deliver_at, planned in plans:
            if outcome is DeliveryOutcome.DROP or deliver_at is None:
                self.hooks.on_drop(planned, now, sender_vt)
                self._record_trace(planned.src, "drop", planned.describe())
                continue
            if outcome is DeliveryOutcome.DUPLICATE:
                self.hooks.on_duplicate(planned, now, sender_vt)
                self._record_trace(planned.src, "duplicate", planned.describe())
            if fault is not None and fault.kind == "delay":
                deliver_at += fault.extra_delay
            if fault is not None and fault.kind == "duplicate":
                copy = planned.as_duplicate()
                self.hooks.on_duplicate(copy, now, sender_vt)
                self.scheduler.schedule_at(deliver_at, EventKind.DELIVER, copy.dst, copy)
            self.scheduler.schedule_at(deliver_at, EventKind.DELIVER, planned.dst, planned)

    def _set_timer(self, pid: str, name: str, delay: float, payload: Any) -> None:
        event = self.scheduler.schedule(delay, EventKind.TIMER, pid, (name, payload))
        self._timer_events.setdefault((pid, name), []).append(event)

    def _cancel_timer(self, pid: str, name: str) -> None:
        for event in self._timer_events.pop((pid, name), []):
            self.scheduler.cancel(event)

    # ------------------------------------------------------------------
    # fault plan materialisation
    # ------------------------------------------------------------------
    def _install_failure_plan(self) -> None:
        plan = self._failure_plan
        self._fault_engine = MessageFaultEngine(plan.message_faults)
        for crash in plan.crashes:
            self.scheduler.schedule_at(crash.at, EventKind.CRASH, crash.pid, crash)
            if crash.recover_at is not None:
                self.scheduler.schedule_at(crash.recover_at, EventKind.RECOVER, crash.pid, crash)
        for partition in plan.partitions:
            self.network.add_partition(partition.to_partition())
        for corruption in plan.corruptions:
            self.scheduler.schedule_at(corruption.at, EventKind.CORRUPT, corruption.pid, corruption)

    # ------------------------------------------------------------------
    # run loop
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Bind contexts, install the fault plan and run every ``on_start``."""
        if self._started:
            return
        if not self._processes:
            raise SimulationError("cannot run an empty cluster")
        self._started = True
        self._install_failure_plan()
        for pid in sorted(self._processes):
            process = self._processes[pid]
            process.bind(self._make_context(pid))
        self.hooks.on_run_start(self.scheduler.now)
        for pid in sorted(self._processes):
            process = self._processes[pid]
            process.on_start()
            self._after_handler(pid, "on_start")

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> RunResult:
        """Run the cluster until quiescence, a limit, or a halting violation."""
        self.start()
        time_limit = min(until if until is not None else self.config.max_time, self.config.max_time)
        event_limit = min(
            max_events if max_events is not None else self.config.max_events, self.config.max_events
        )
        executed = 0
        reason = "quiescent"
        while not self._halted:
            if executed >= event_limit:
                reason = "event-limit"
                break
            next_time = self.scheduler.peek_time()
            if next_time is None:
                reason = "quiescent"
                break
            if next_time > time_limit:
                reason = "time-limit"
                break
            event = self.scheduler.pop_next()
            if event is None:
                reason = "quiescent"
                break
            self._execute(event)
            executed += 1
        if self._halted:
            reason = self._halt_reason or "halted"
        for process in self._processes.values():
            if not process.crashed:
                process.on_stop()
        self.hooks.on_run_end(self.scheduler.now)
        return RunResult(
            events_executed=executed,
            final_time=self.scheduler.now,
            stopped_reason=reason,
            violations=list(self._violations),
            network_stats=self.network.stats,
            process_states={pid: dict(p.state) for pid, p in self._processes.items()},
            trace=list(self._trace),
        )

    def halt(self, reason: str = "halted") -> None:
        """Stop the run loop after the current event."""
        self._halted = True
        self._halt_reason = reason

    def resume(self) -> None:
        """Clear a previous halt so the run loop can be re-entered."""
        self._halted = False
        self._halt_reason = ""

    # ------------------------------------------------------------------
    # event execution
    # ------------------------------------------------------------------
    def _execute(self, event: Event) -> None:
        if event.kind is EventKind.DELIVER:
            self._execute_delivery(event)
        elif event.kind is EventKind.TIMER:
            self._execute_timer(event)
        elif event.kind is EventKind.CRASH:
            self._execute_crash(event)
        elif event.kind is EventKind.RECOVER:
            self._execute_recover(event)
        elif event.kind is EventKind.CORRUPT:
            self._execute_corruption(event)
        elif event.kind is EventKind.CONTROL:
            callback = event.payload
            if callable(callback):
                callback()
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown event kind {event.kind!r}")

    def _execute_delivery(self, event: Event) -> None:
        message: Message = event.payload
        process = self.process(event.target)
        if process.crashed:
            self._record_trace(event.target, "dead-letter", message.describe())
            return
        now = self.scheduler.now
        self.hooks.before_receive(event.target, message, now)
        self._record_trace(event.target, "receive", message.describe())
        process.deliver(message)
        self.hooks.on_receive(event.target, message, now, process.vector_timestamp)
        self._after_handler(event.target, f"deliver {message.kind}")

    def _execute_timer(self, event: Event) -> None:
        name, payload = event.payload
        process = self.process(event.target)
        if process.crashed:
            return
        self.hooks.on_timer(event.target, name, self.scheduler.now, process.vector_timestamp)
        self._record_trace(event.target, "timer", name)
        process.fire_timer(name, payload)
        self._after_handler(event.target, f"timer {name}")

    def _execute_crash(self, event: Event) -> None:
        process = self.process(event.target)
        if process.crashed:
            return
        process.mark_crashed()
        # Cancel the crashed process's deliveries and timers, but leave any
        # scheduled RECOVER event in place so the process can come back.
        self.scheduler.cancel_for_target(event.target, EventKind.DELIVER)
        self.scheduler.cancel_for_target(event.target, EventKind.TIMER)
        self._timer_events = {
            key: events for key, events in self._timer_events.items() if key[0] != event.target
        }
        self.hooks.on_crash(event.target, self.scheduler.now, process.vector_timestamp)
        self._record_trace(event.target, "crash", "process crashed")

    def _execute_recover(self, event: Event) -> None:
        process = self.process(event.target)
        if not process.crashed:
            return
        process.mark_recovered()
        self.hooks.on_recover(event.target, self.scheduler.now, process.vector_timestamp)
        self._record_trace(event.target, "recover", "process recovered")
        self._after_handler(event.target, "on_recover")

    def _execute_corruption(self, event: Event) -> None:
        fault: StateCorruptionFault = event.payload
        process = self.process(event.target)
        if process.crashed:
            return
        fault.mutator(process.state)
        self.hooks.on_corruption(
            event.target, fault.description, self.scheduler.now, process.vector_timestamp
        )
        self._record_trace(event.target, "corrupt", fault.description)
        self._after_handler(event.target, "corruption")

    def _after_handler(self, pid: str, description: str) -> None:
        """Post-handler bookkeeping: invariant checks and hook notification."""
        now = self.scheduler.now
        self.hooks.after_handler(pid, description, now)
        if not self.config.check_invariants:
            return
        process = self.process(pid)
        try:
            process.check_invariants()
        except InvariantViolation as violation:
            handled = bool(
                self.hooks.on_invariant_violation(
                    pid, violation.name, violation.detail, now, process.vector_timestamp
                )
            )
            self._violations.append(
                ViolationRecord(pid, violation.name, violation.detail, now, handled)
            )
            self._record_trace(pid, "violation", f"{violation.name}: {violation.detail}")
            if handled:
                return
            if self.config.raise_on_violation:
                raise
            if self.config.halt_on_violation:
                self.halt(f"invariant-violation:{violation.name}@{pid}")

    # ------------------------------------------------------------------
    # checkpointing / rollback support used by the Time Machine and FixD
    # ------------------------------------------------------------------
    def capture_checkpoint(self, pid: str) -> ProcessCheckpoint:
        """Snapshot one process's local state at the current time."""
        return self.process(pid).capture_checkpoint(self.scheduler.now)

    def capture_all(self) -> Dict[str, ProcessCheckpoint]:
        """Snapshot every live process (a *local* checkpoint set, not yet a recovery line)."""
        return {pid: self.capture_checkpoint(pid) for pid in self.pids}

    def restore_checkpoints(
        self, checkpoints: Dict[str, ProcessCheckpoint], clear_in_flight: bool = True
    ) -> None:
        """Restore a set of per-process checkpoints (a rollback).

        ``clear_in_flight`` cancels all pending deliveries and timers for
        the restored processes — messages sent after the restored states
        no longer exist in the rolled-back world.
        """
        for pid, checkpoint in checkpoints.items():
            process = self.process(pid)
            process.restore_checkpoint(checkpoint)
            if clear_in_flight:
                self.scheduler.cancel_for_target(pid)
                self._timer_events = {
                    key: events for key, events in self._timer_events.items() if key[0] != pid
                }
            self._record_trace(pid, "rollback", f"restored checkpoint #{checkpoint.sequence}")

    def restart_process(self, pid: str) -> Process:
        """Replace a process with a brand new instance (restart-from-scratch).

        Only possible for processes registered through a factory.
        """
        factory = self._factories.get(pid)
        if factory is None:
            raise SimulationError(
                f"process {pid!r} was registered as an instance; restart-from-scratch "
                "requires a factory"
            )
        fresh = factory()
        self._processes[pid] = fresh
        fresh.bind(self._make_context(pid))
        self.scheduler.cancel_for_target(pid)
        fresh.on_start()
        self._record_trace(pid, "restart", "restarted from initial state")
        return fresh

    def global_vector_time(self) -> Dict[str, VectorTimestamp]:
        """Current vector timestamp of every process."""
        return {pid: process.vector_timestamp for pid, process in self._processes.items()}
