"""Deterministic distributed-system simulation substrate.

The paper assumes a cluster of communicating OS processes.  This package
provides the equivalent substrate in pure Python:

* :mod:`repro.dsim.scheduler` — a deterministic discrete-event scheduler
  with stable tie-breaking, so a run is a pure function of its seed and
  the injected faults.
* :mod:`repro.dsim.process` — the application programming model: event
  handler classes with message handlers, timers, tracked local state and
  invariant declarations.
* :mod:`repro.dsim.channel` / :mod:`repro.dsim.network` — point-to-point
  channels with configurable delay, loss, duplication, reordering and
  partitions.
* :mod:`repro.dsim.failure` — fault injection plans (crashes, channel
  faults, state corruption).
* :mod:`repro.dsim.cluster` — the frontend: process registration, hooks,
  failure plans and the violation policy over a pluggable backend.
* :mod:`repro.dsim.backend` — the :class:`~repro.dsim.backend.Backend`
  protocol with three substrates: the deterministic simulator
  (:class:`~repro.dsim.backend.SimBackend`, the default), real OS
  processes (:class:`~repro.dsim.backend.MPBackend`) over a pluggable
  transport — batched pipe writes or zero-pickle shared-memory rings
  (:mod:`repro.dsim.shm_ring`) — and real OS processes over sharded
  asyncio socket routers (:class:`~repro.dsim.net_backend.NetBackend`,
  framing in :mod:`repro.dsim.net_transport`).

The FixD components attach to the simulator exclusively through the hook
interfaces in :mod:`repro.dsim.hooks`, which keeps this substrate free of
dependencies on the rest of the library.
"""

from repro.dsim.backend import Backend, MPBackend, MPBackendOptions, SimBackend
from repro.dsim.net_backend import NetBackend, NetBackendOptions
from repro.dsim.clock import LamportClock, VectorClock, happens_before
from repro.dsim.cluster import Cluster, ClusterConfig, RunResult
from repro.dsim.failure import CrashFault, FailurePlan, MessageFault, PartitionFault, StateCorruptionFault
from repro.dsim.message import Message
from repro.dsim.network import Network, NetworkConfig
from repro.dsim.process import Process, ProcessContext, handler
from repro.dsim.scheduler import Event, EventKind, Scheduler

__all__ = [
    "Backend",
    "SimBackend",
    "MPBackend",
    "MPBackendOptions",
    "NetBackend",
    "NetBackendOptions",
    "LamportClock",
    "VectorClock",
    "happens_before",
    "Cluster",
    "ClusterConfig",
    "RunResult",
    "CrashFault",
    "FailurePlan",
    "MessageFault",
    "PartitionFault",
    "StateCorruptionFault",
    "Message",
    "Network",
    "NetworkConfig",
    "Process",
    "ProcessContext",
    "handler",
    "Event",
    "EventKind",
    "Scheduler",
]
