"""Seeded, per-process random number streams.

Randomness is one of the nondeterministic actions the Scroll has to
record (Section 3.1: "only nondeterministic actions ... and their outcome
need to be recorded").  To make recording and replay practical the
simulator gives every process its own deterministic stream derived from
the run seed and the process id, so that

* two runs with the same seed and fault plan produce identical traces,
  and
* the Scroll can replace a stream with a *replayed* stream that returns
  the recorded outcomes instead of fresh draws.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, List, Sequence, TypeVar

T = TypeVar("T")


def derive_seed(root_seed: int, *components: str) -> int:
    """Derive a child seed from a root seed and a path of string components.

    The derivation is stable across Python versions and platforms (it
    uses SHA-256 rather than ``hash``), which keeps simulation runs
    reproducible in tests and benchmarks.
    """
    digest = hashlib.sha256()
    digest.update(str(int(root_seed)).encode("utf-8"))
    for part in components:
        digest.update(b"/")
        digest.update(part.encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big")


class DeterministicRNG:
    """A counted, rewindable random stream.

    Every draw method consumes exactly **one** value of the underlying
    generator and derives its result from it, so the stream position is
    fully described by the draw counter.  That makes checkpoints cheap
    (store one integer) and restores exact: rewinding to draw ``n`` and
    drawing again yields the same values regardless of which draw methods
    were used, which the Time Machine and the model checker rely on.
    """

    __slots__ = ("_seed", "_rng", "_draws")

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)
        self._rng = random.Random(self._seed)
        self._draws = 0

    @property
    def seed(self) -> int:
        return self._seed

    @property
    def draws(self) -> int:
        """Number of values drawn so far (the replay cursor)."""
        return self._draws

    def _unit(self) -> float:
        """Consume one underlying value; every public draw goes through here."""
        self._draws += 1
        return self._rng.random()

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._unit()

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        if high < low:
            raise ValueError("randint bounds must satisfy low <= high")
        span = high - low + 1
        return low + min(int(self._unit() * span), span - 1)

    def choice(self, items: Sequence[T]) -> T:
        """Uniformly pick one element of a non-empty sequence."""
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        index = min(int(self._unit() * len(items)), len(items) - 1)
        return items[index]

    def shuffle(self, items: List[T]) -> List[T]:
        """Return a shuffled copy of ``items`` (the input is not mutated)."""
        derived = random.Random(int(self._unit() * 2**63))
        copy = list(items)
        derived.shuffle(copy)
        return copy

    def sample(self, items: Sequence[T], k: int) -> List[T]:
        """Sample ``k`` distinct elements."""
        derived = random.Random(int(self._unit() * 2**63))
        return derived.sample(list(items), k)

    def expovariate(self, rate: float) -> float:
        """Exponentially distributed value with the given rate (used for delays)."""
        if rate <= 0:
            raise ValueError("rate must be positive")
        import math

        u = self._unit()
        return -math.log(1.0 - u) / rate

    def state_marker(self) -> int:
        """Return the replay cursor, suitable for inclusion in a checkpoint."""
        return self._draws

    def restore(self, draws: int) -> None:
        """Rewind/fast-forward the stream so exactly ``draws`` values have been drawn."""
        if draws < 0:
            raise ValueError("draw count cannot be negative")
        self._rng = random.Random(self._seed)
        self._draws = 0
        for _ in range(draws):
            self._rng.random()
            self._draws += 1

    def fork(self, label: str) -> "DeterministicRNG":
        """Create an independent child stream labelled ``label``."""
        return DeterministicRNG(derive_seed(self._seed, "fork", label))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DeterministicRNG(seed={self._seed}, draws={self._draws})"


def spawn_streams(root_seed: int, labels: Iterable[str]) -> dict:
    """Create one independent stream per label from a single root seed."""
    return {label: DeterministicRNG(derive_seed(root_seed, label)) for label in labels}
