"""The simulated network: channels, partitions and global message routing.

The network owns one :class:`~repro.dsim.channel.Channel` per ordered
pair of processes (created lazily), applies partitions, and keeps the
global registry of every message that has entered the system.  The FixD
runtime observes the network through the hook interface so the Scroll can
log sends, deliveries, drops and duplications without the network knowing
anything about logging.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.dsim.channel import Channel, ChannelConfig, DeliveryOutcome
from repro.dsim.message import Message
from repro.dsim.rng import DeterministicRNG, derive_seed
from repro.errors import UnknownProcessError


@dataclass
class NetworkConfig:
    """Network-wide defaults, overridable per channel.

    ``channel_overrides`` maps ``(src, dst)`` pairs to a
    :class:`ChannelConfig` used for that direction only; all other pairs
    use ``default_channel``.
    """

    default_channel: ChannelConfig = field(default_factory=ChannelConfig)
    channel_overrides: Dict[Tuple[str, str], ChannelConfig] = field(default_factory=dict)


class Partition:
    """A network partition: a set of groups that cannot talk across groups.

    A partition is active during a half-open time window
    ``[start, end)``.  Processes not named in any group form an implicit
    extra group, so a two-group partition ``[{a}, {b}]`` in a three
    process system isolates ``a`` and ``b`` from each other but both may
    still reach ``c`` only if ``c`` is listed with them; unlisted
    processes can reach everyone (they are assumed to be on the healthy
    side of every cut).
    """

    def __init__(self, groups: Iterable[Iterable[str]], start: float, end: float) -> None:
        self.groups: List[Set[str]] = [set(group) for group in groups]
        if start >= end:
            raise ValueError("partition start time must precede its end time")
        self.start = float(start)
        self.end = float(end)

    def active_at(self, time: float) -> bool:
        return self.start <= time < self.end

    def separates(self, src: str, dst: str) -> bool:
        """True when ``src`` and ``dst`` are in different named groups."""
        src_group = self._group_of(src)
        dst_group = self._group_of(dst)
        if src_group is None or dst_group is None:
            return False
        return src_group != dst_group

    def _group_of(self, pid: str) -> Optional[int]:
        for index, group in enumerate(self.groups):
            if pid in group:
                return index
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Partition(groups={self.groups}, [{self.start}, {self.end}))"


class Network:
    """Routes messages between registered processes through channels."""

    def __init__(self, config: NetworkConfig | None = None, seed: int = 0) -> None:
        self.config = config or NetworkConfig()
        self._seed = seed
        self._processes: Set[str] = set()
        self._channels: Dict[Tuple[str, str], Channel] = {}
        self._partitions: List[Partition] = []
        self._delivered: int = 0
        self._dropped: int = 0
        self._duplicated: int = 0

    # ------------------------------------------------------------------
    # topology management
    # ------------------------------------------------------------------
    def register_process(self, pid: str) -> None:
        """Make ``pid`` addressable on the network."""
        self._processes.add(pid)

    def known_processes(self) -> Set[str]:
        return set(self._processes)

    def add_partition(self, partition: Partition) -> None:
        """Install a partition window."""
        self._partitions.append(partition)

    def clear_partitions(self) -> None:
        self._partitions.clear()

    def channel(self, src: str, dst: str) -> Channel:
        """Return (creating if necessary) the channel from ``src`` to ``dst``."""
        key = (src, dst)
        if key not in self._channels:
            config = self.config.channel_overrides.get(key, self.config.default_channel)
            rng = DeterministicRNG(derive_seed(self._seed, "channel", src, dst))
            self._channels[key] = Channel(src, dst, config, rng)
        return self._channels[key]

    # ------------------------------------------------------------------
    # continuation support
    # ------------------------------------------------------------------
    def channel_states(self) -> Dict[Tuple[str, str], dict]:
        """Per-channel replay positions for every channel created so far.

        Channels are created lazily with seeds derived purely from the
        network seed and the endpoint pair, so a rebuilt network recreates
        identical channels on demand — only their *positions* (RNG draws,
        FIFO watermark) need persisting for a faithful continuation.
        """
        return {
            key: channel.state_snapshot() for key, channel in self._channels.items()
        }

    def restore_channel_states(self, states: Dict[Tuple[str, str], dict]) -> None:
        """Fast-forward channels to persisted :meth:`channel_states`."""
        for key, snapshot in states.items():
            src, dst = key
            self.channel(src, dst).restore_state(snapshot)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def route(
        self, message: Message, now: float
    ) -> List[Tuple[DeliveryOutcome, Optional[float], Message]]:
        """Decide the fate of ``message`` and return delivery plans.

        Raises :class:`UnknownProcessError` if either endpoint has not
        been registered — catching silent misrouting early is far easier
        than debugging a protocol that quietly never hears back.
        """
        if message.src not in self._processes:
            raise UnknownProcessError(message.src)
        if message.dst not in self._processes:
            raise UnknownProcessError(message.dst)

        partitioned = self.is_partitioned(message.src, message.dst, now)
        plans = self.channel(message.src, message.dst).plan_delivery(message, now, partitioned)
        for outcome, _, _ in plans:
            if outcome is DeliveryOutcome.DROP:
                self._dropped += 1
            elif outcome is DeliveryOutcome.DUPLICATE:
                self._duplicated += 1
            else:
                self._delivered += 1
        return plans

    def is_partitioned(self, src: str, dst: str, time: float) -> bool:
        """True when an active partition separates ``src`` from ``dst``."""
        return any(p.active_at(time) and p.separates(src, dst) for p in self._partitions)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    @property
    def stats(self) -> Dict[str, int]:
        """Aggregate counters over the whole run."""
        return {
            "delivered": self._delivered,
            "dropped": self._dropped,
            "duplicated": self._duplicated,
        }
