"""``python -m repro.fuzz`` — the fuzzing CLI.

Examples::

    python -m repro.fuzz kvstore --max-execs 100 --seed 3
    python -m repro.fuzz bank --max-seconds 30 --corpus .fuzz/bank \\
        --suites suites --processes 4
    python -m repro.fuzz token_ring --params nodes=5 --json
    python -m repro.fuzz --minimize-corpus --corpus .fuzz/bank

Exit status: 0 always when the budget ran (found failures are the
*product* of fuzzing, not an error), 2 for bad usage.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

from repro.errors import ScenarioError
from repro.fuzz.driver import Budget, fuzz


def _parse_params(pairs: List[str]) -> Dict[str, Any]:
    params: Dict[str, Any] = {}
    for pair in pairs:
        if "=" not in pair:
            raise ScenarioError(f"--params takes key=value pairs, got {pair!r}")
        key, _, raw = pair.partition("=")
        try:
            params[key] = json.loads(raw)
        except json.JSONDecodeError:
            params[key] = raw
    return params


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Coverage-guided fault-scenario fuzzing of a registered app.",
    )
    parser.add_argument(
        "app",
        nargs="?",
        default=None,
        help="registered application name (see repro.api.apps); "
        "not needed with --minimize-corpus",
    )
    parser.add_argument(
        "--params",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="app parameter override (repeatable; values parsed as JSON when possible)",
    )
    parser.add_argument("--seed", type=int, default=0, help="fuzzer seed (default 0)")
    parser.add_argument(
        "--max-execs",
        type=int,
        default=None,
        help="budget: number of scenario executions (default 200 when no --max-seconds)",
    )
    parser.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        help="budget: wall-clock seconds (combines with --max-execs; first limit wins)",
    )
    parser.add_argument(
        "--corpus",
        default=None,
        metavar="DIR",
        help="persistent corpus directory (omit for an in-memory corpus)",
    )
    parser.add_argument(
        "--suites",
        default=None,
        metavar="DIR",
        help="write minimized failures as replayable suite artefacts into DIR",
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=None,
        help="fan scenario executions over N worker processes",
    )
    parser.add_argument(
        "--batch", type=int, default=8, help="scenarios generated per round (default 8)"
    )
    parser.add_argument(
        "--max-faults",
        type=int,
        default=4,
        help="max faults per generated schedule (default 4)",
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="skip delta-debugging of found failures",
    )
    parser.add_argument(
        "--shrink-runs",
        type=int,
        default=96,
        help="execution budget per shrink (default 96)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the full machine-readable report on stdout",
    )
    parser.add_argument(
        "--minimize-corpus",
        action="store_true",
        help="drop corpus entries whose coverage points another entry "
        "subsumes (requires --corpus); no fuzzing is run",
    )
    args = parser.parse_args(argv)

    if args.minimize_corpus:
        from repro.fuzz.corpus import Corpus

        if args.corpus is None:
            print("error: --minimize-corpus requires --corpus DIR", file=sys.stderr)
            return 2
        corpus = Corpus(args.corpus)
        before = len(corpus)
        dropped = corpus.minimize()
        if args.json:
            print(
                json.dumps(
                    {
                        "before": before,
                        "after": len(corpus),
                        "dropped": sorted(e.coverage_key for e in dropped),
                        "stats": corpus.stats(),
                    },
                    sort_keys=True,
                    indent=2,
                )
            )
        else:
            print(
                f"corpus {args.corpus}: {before} -> {len(corpus)} entries "
                f"({len(dropped)} subsumed)"
            )
            for entry in dropped:
                print(f"  dropped {entry.coverage_key} ({entry.scenario.name})")
        return 0

    if args.app is None:
        print("error: an app name is required (unless --minimize-corpus)", file=sys.stderr)
        return 2

    if args.max_execs is None and args.max_seconds is None:
        budget = Budget()
    else:
        budget = Budget(max_execs=args.max_execs, max_seconds=args.max_seconds)

    progress = None if args.json else (lambda line: print(line, flush=True))
    try:
        report = fuzz(
            args.app,
            _parse_params(args.params),
            seed=args.seed,
            budget=budget,
            corpus_dir=args.corpus,
            suites_dir=args.suites,
            processes=args.processes,
            batch=args.batch,
            max_faults=args.max_faults,
            shrink=not args.no_shrink,
            shrink_runs=args.shrink_runs,
            progress=progress,
        )
    except ScenarioError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.json:
        print(json.dumps(report.to_dict(), sort_keys=True, indent=2))
        return 0

    stats = report.corpus_stats
    print(
        f"\n{report.app}: {report.execs} execs in {report.elapsed_s:.1f}s "
        f"({report.execs_per_sec:.1f}/s), corpus {stats.get('entries', 0)} "
        f"(+{report.new_coverage} new, {report.dedup_hits} dedup), "
        f"{report.distinct_failures} distinct failure(s)"
    )
    for failure in report.minimized:
        where = f" -> {failure.suite_path}" if failure.suite_path else ""
        print(
            f"  minimized {failure.scenario.name}: "
            f"{failure.faults_before} -> {failure.faults_after} fault(s) "
            f"[{failure.scenario.faults.label}]{where}"
        )
    for error_line in report.errors:
        print(f"  candidate error: {error_line}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
