"""Schedule shrinking: minimize a failing schedule, hypothesis-style.

Given a scenario whose run produced a failure signature, find a smaller
schedule that *still reproduces the identical signature*.  Soundness
rests on the rerun-determinism property the repo already enforces: the
simulator run of a serialized scenario is a pure function of the
scenario, so "re-run the candidate and compare signatures" is a real
test, not a coin flip.

Two phases, both budgeted by executions:

1. **Delta debugging over schedule entries** (ddmin): try dropping
   chunks of the fault list at increasing granularity, then greedy
   single-fault removal ordered by each spec's ``shrink_order``
   metadata (delays are tried before crashes — removing a crash
   reshapes the whole run and rarely survives).
2. **Per-fault attribute shrinking**: each surviving spec proposes
   simpler variants via ``shrink_candidates()`` (count→1, delay
   halved, partition window narrowed, multi-op corruption split);
   a variant is kept only when the signature survives.

Every candidate is materialized through the ordinary
:class:`~repro.api.scenario.Scenario` constructor, so the shrinker can
never emit a schedule that fails validation — an invalid candidate is
simply skipped.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence

from repro.api.faults import FaultSchedule
from repro.api.outcome import Outcome
from repro.api.scenario import Scenario
from repro.errors import ScenarioError


@dataclass
class ShrinkResult:
    """What the shrinker achieved for one failing scenario."""

    scenario: Scenario
    signature: str
    original_faults: int
    runs: int = 0
    #: True when the run budget was exhausted before reaching a fixpoint
    budget_exhausted: bool = False

    @property
    def faults(self) -> int:
        return len(self.scenario.faults)

    @property
    def removed(self) -> int:
        return self.original_faults - self.faults


class _Shrinker:
    def __init__(
        self,
        scenario: Scenario,
        signature: str,
        runner: Callable[[Scenario], Outcome],
        max_runs: int,
    ) -> None:
        self.scenario = scenario
        self.signature = signature
        self.runner = runner
        self.max_runs = max_runs
        self.runs = 0
        self._cache: Dict[str, bool] = {}

    def out_of_budget(self) -> bool:
        return self.runs >= self.max_runs

    def reproduces(self, faults: Sequence) -> bool:
        """Does the candidate schedule reproduce the exact signature?"""
        try:
            candidate = replace(
                self.scenario, faults=FaultSchedule(faults=tuple(faults))
            )
        except ScenarioError:
            return False  # invalid candidates are skipped, never emitted
        cached = self._cache.get(candidate.to_json())
        if cached is not None:
            return cached
        if self.out_of_budget():
            return False
        self.runs += 1
        outcome = self.runner(candidate)
        verdict = outcome.failure_signature() == self.signature
        self._cache[candidate.to_json()] = verdict
        return verdict

    # ------------------------------------------------------------------
    # phase 1: delta debugging over schedule entries
    # ------------------------------------------------------------------
    def ddmin(self, faults: List) -> List:
        granularity = 2
        while len(faults) >= 2 and not self.out_of_budget():
            chunk = max(1, len(faults) // granularity)
            reduced = False
            for start in range(0, len(faults), chunk):
                candidate = faults[:start] + faults[start + chunk :]
                if candidate != faults and self.reproduces(candidate):
                    faults = candidate
                    granularity = max(granularity - 1, 2)
                    reduced = True
                    break
            if not reduced:
                if granularity >= len(faults):
                    break
                granularity = min(len(faults), granularity * 2)
        # greedy singles, cheapest-to-remove kinds first
        changed = True
        while changed and len(faults) >= 1 and not self.out_of_budget():
            changed = False
            order = sorted(
                range(len(faults)), key=lambda i: (faults[i].shrink_order, i)
            )
            for index in order:
                candidate = faults[:index] + faults[index + 1 :]
                if self.reproduces(candidate):
                    faults = candidate
                    changed = True
                    break
        return faults

    # ------------------------------------------------------------------
    # phase 2: per-fault attribute shrinking
    # ------------------------------------------------------------------
    def shrink_attributes(self, faults: List) -> List:
        changed = True
        while changed and not self.out_of_budget():
            changed = False
            for index, spec in enumerate(faults):
                for simpler in spec.shrink_candidates():
                    candidate = faults[:index] + [simpler] + faults[index + 1 :]
                    if self.reproduces(candidate):
                        faults = candidate
                        changed = True
                        break
                if changed:
                    break
        return faults


def shrink_scenario(
    scenario: Scenario,
    signature: Optional[str] = None,
    *,
    runner: Optional[Callable[[Scenario], Outcome]] = None,
    max_runs: int = 128,
) -> ShrinkResult:
    """Minimize ``scenario``'s fault schedule while its failure reproduces.

    ``signature`` is the failure to preserve; when omitted the scenario
    is run once to establish it (raising :class:`ScenarioError` when
    the run is healthy — there is nothing to shrink toward).
    ``runner`` defaults to :func:`repro.api.experiment.run_scenario`;
    injectable for tests and for pooled execution.
    """
    if runner is None:
        from repro.api.experiment import run_scenario as runner  # type: ignore[no-redef]

    baseline_runs = 0
    if signature is None:
        baseline_runs = 1
        signature = runner(scenario).failure_signature()
    if signature is None:
        raise ScenarioError(
            f"scenario {scenario.name!r} met every expectation; nothing to shrink"
        )
    shrinker = _Shrinker(scenario, signature, runner, max_runs)
    faults = list(scenario.faults.faults)
    faults = shrinker.ddmin(faults)
    faults = shrinker.shrink_attributes(faults)
    minimized = replace(scenario, faults=FaultSchedule(faults=tuple(faults)))
    return ShrinkResult(
        scenario=minimized,
        signature=signature,
        original_faults=len(scenario.faults),
        runs=shrinker.runs + baseline_runs,
        budget_exhausted=shrinker.out_of_budget(),
    )
