"""``repro.fuzz`` — coverage-guided fault-scenario fuzzing.

FixD's pipeline (detect → report → rollback → heal) is only as good as
the fault *interleavings* it has been shown; hand-written matrices stop
at the interleavings somebody thought to write.  This package closes
the loop the ROADMAP calls "coverage-guided scenario fuzzing at scale":

* :func:`generate_scenario` / :func:`generate_schedule` — a **seeded
  generator** sampling valid fault specs (Crash/Drop/Duplicate/Delay/
  Partition/Corrupt) against a target app's learned vocabulary (pids,
  observed message kinds, mutable state paths).  Same seed → byte-
  identical canonical scenario JSON, in any process.
* :func:`coverage_key` — a **coverage signal** fingerprinting a run
  from its :class:`~repro.api.outcome.Outcome`: detection-evidence kind
  set, Scroll entry-kind n-gram digests per pid, recovery-path shape
  and the consistency verdict.
* :class:`Corpus` — **corpus management**: coverage-keyed dedup with
  on-disk canonical-JSON entries and metadata (seed, coverage key,
  failure signature, flattened coverage points), plus
  :meth:`Corpus.minimize` dropping entries whose point set another
  entry subsumes (``python -m repro.fuzz --minimize-corpus``).
* :func:`shrink_scenario` — **schedule shrinking**: delta debugging
  over schedule entries plus per-fault attribute shrinking (via each
  spec's ``shrink_candidates``), re-running after every candidate and
  keeping it only when the identical failure signature reproduces —
  the rerun-determinism property is what makes this sound.
* :func:`fuzz` — the driver behind ``Experiment.fuzz(budget=...)`` and
  ``python -m repro.fuzz``, fanning candidate scenarios over the same
  process-pool path grids use and writing minimized failures into
  suite files that replay green-or-expected-violation.

This ``__init__`` is the public surface; the submodules are internal
(boundary-guarded by ``scripts/check.sh``).
"""

from repro.fuzz.corpus import Corpus, CorpusEntry
from repro.fuzz.coverage import (
    coverage_key,
    coverage_points,
    coverage_projection,
    is_interesting_failure,
)
from repro.fuzz.driver import Budget, FuzzReport, fuzz
from repro.fuzz.generate import (
    Vocabulary,
    generate_scenario,
    generate_schedule,
    vocabulary_for,
)
from repro.fuzz.shrink import ShrinkResult, shrink_scenario

__all__ = [
    "Budget",
    "Corpus",
    "CorpusEntry",
    "FuzzReport",
    "ShrinkResult",
    "Vocabulary",
    "coverage_key",
    "coverage_points",
    "coverage_projection",
    "fuzz",
    "generate_scenario",
    "generate_schedule",
    "is_interesting_failure",
    "shrink_scenario",
    "vocabulary_for",
]
