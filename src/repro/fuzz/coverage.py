"""The coverage signal: fingerprint *what a run did*, not what it was fed.

Two schedules that crash different pids at different times but drive
FixD down the same path — same detection evidence, same Scroll entry
interleaving shapes, same recovery route, same verdict — are the same
discovery; keeping both teaches the corpus nothing.  The fingerprint
folds together:

* the **detection-evidence kind set** (which injected fault kinds the
  run actually produced evidence for, plus per-kind hit counts bucketed
  to 0/1/many),
* per-pid **Scroll entry-kind n-gram digests** — the shape of each
  process's recorded interleaving, order-sensitive but length-blind,
* the **recovery-path shape** (rolled back / healed / which pids came
  back), and
* the **verdicts** (consistent / ok / detected, and which invariants
  fired).

Everything is read off the structured :class:`~repro.api.outcome.
Outcome`, so coverage works identically for in-process and pool runs.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, FrozenSet, List

from repro.api.outcome import Outcome

#: n-gram window over per-pid Scroll entry-kind sequences
NGRAM = 2


def _digest(payload: Any) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(canonical.encode(), digest_size=8).hexdigest()


def _bucket(count: int) -> str:
    """Hit counts collapse to 0 / 1 / many — raw counts over-split coverage."""
    if count <= 0:
        return "0"
    return "1" if count == 1 else "many"


def kind_ngram_digests(outcome: Outcome, n: int = NGRAM) -> Dict[str, str]:
    """Per-pid digest of the *set* of entry-kind n-grams the run recorded.

    The set (not the sequence) keeps the signal length-blind: a run
    that loops the same receive/send pattern 40 times instead of 20 is
    not new coverage, while a new interleaving window is.
    """
    sequences = outcome.scroll.get("kind_sequences", {})
    digests: Dict[str, str] = {}
    for pid in sorted(sequences):
        kinds: List[str] = sequences[pid]
        grams = {">".join(kinds[i : i + n]) for i in range(max(0, len(kinds) - n + 1))}
        digests[pid] = _digest(sorted(grams))
    return digests


def coverage_projection(outcome: Outcome, n: int = NGRAM) -> Dict[str, Any]:
    """The structured coverage view :func:`coverage_key` hashes.

    Exposed separately so tests (and curious humans) can see *why* two
    runs were considered the same or different.
    """
    return {
        "evidence": sorted(kind for kind, seen in outcome.observed.items() if seen),
        "fault_hits": {
            rule: _bucket(count) for rule, count in sorted(outcome.fault_hits.items())
        },
        "ngrams": kind_ngram_digests(outcome, n),
        "recovery": {
            "rolled_back": outcome.rolled_back,
            "healed": outcome.healed,
            "recovered": dict(sorted(outcome.recovered.items())),
        },
        "verdict": {
            "consistent": outcome.consistent,
            "ok": outcome.ok,
            "detected": outcome.detected,
            "violations": sorted({v["invariant"] for v in outcome.violations}),
        },
    }


def coverage_key(outcome: Outcome, n: int = NGRAM) -> str:
    """The hashable coverage fingerprint of one run (16 hex chars)."""
    return _digest(coverage_projection(outcome, n))


def coverage_points(projection: Dict[str, Any]) -> FrozenSet[str]:
    """Flatten a projection into its individual coverage *points*.

    Where :func:`coverage_key` answers "have we seen exactly this
    behaviour before?" (dedup), the point set answers "what does this
    run contribute?" (minimization): an entry whose points are all
    covered by another entry adds nothing to the corpus and can be
    dropped.  Each point is a stable string, so point sets survive a
    JSON round trip through the entry file.
    """
    points = set()
    for kind in projection.get("evidence", ()):
        points.add(f"evidence:{kind}")
    for rule, bucket in projection.get("fault_hits", {}).items():
        points.add(f"fault:{rule}:{bucket}")
    for pid, digest in projection.get("ngrams", {}).items():
        points.add(f"ngram:{pid}:{digest}")
    recovery = projection.get("recovery", {})
    if recovery.get("rolled_back"):
        points.add("recovery:rolled_back")
    if recovery.get("healed"):
        points.add("recovery:healed")
    for pid, recovered in recovery.get("recovered", {}).items():
        points.add(f"recovery:recovered:{pid}:{bool(recovered)}")
    verdict = projection.get("verdict", {})
    for flag in ("consistent", "ok", "detected"):
        points.add(f"verdict:{flag}:{bool(verdict.get(flag))}")
    for invariant in verdict.get("violations", ()):
        points.add(f"violation:{invariant}")
    return frozenset(points)


def is_interesting_failure(outcome: Outcome) -> bool:
    """Worth shrinking and keeping: the run went wrong in *substance*.

    An invariant fired, the final states flunked the consistency check,
    or the run ended with unhandled violations.  A schedule whose only
    sin is that a fault never produced evidence (e.g. a drop rule that
    matched nothing) is a boring mismatch, not a found bug.
    """
    return bool(outcome.faults_detected > 0 or not outcome.consistent or not outcome.ok)
