"""On-disk corpus management: coverage-keyed dedup over canonical JSON.

One corpus entry per coverage key — the first scenario to reach a
coverage point claims it; later scenarios with the same fingerprint are
dedup hits and are not stored.  Entries are canonical-JSON files named
by their coverage key::

    <root>/entries/<coverage_key>.json
    {
      "meta": {
        "coverage_key": ..., "seed": ..., "signature": ... | null,
        "interesting": bool, "minimized": bool
      },
      "scenario": { ...Scenario.to_dict()... }
    }

so a corpus directory is diffable, committable and replayable with the
ordinary suite machinery (the scenario payload *is* a suite scenario).
Writes are atomic (tmp + ``os.replace``) — a fuzzing run killed
mid-write never leaves a torn entry behind.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.api.scenario import Scenario
from repro.errors import ScenarioError


@dataclass(frozen=True)
class CorpusEntry:
    """One stored discovery: a scenario plus its coverage metadata."""

    scenario: Scenario
    coverage_key: str
    seed: Optional[int] = None
    #: failure signature when the run went wrong, None for healthy coverage
    signature: Optional[str] = None
    #: substantive failure (violation / inconsistency), not a boring mismatch
    interesting: bool = False
    #: True once the shrinker reduced this entry's schedule
    minimized: bool = False
    #: flattened coverage points (see ``coverage_points``); empty for
    #: entries written before points were recorded — those are never
    #: dropped by :meth:`Corpus.minimize` (unknown contribution)
    points: Tuple[str, ...] = ()

    def to_payload(self) -> Dict[str, Any]:
        return {
            "meta": {
                "coverage_key": self.coverage_key,
                "seed": self.seed,
                "signature": self.signature,
                "interesting": self.interesting,
                "minimized": self.minimized,
                "points": sorted(self.points),
            },
            "scenario": self.scenario.to_dict(),
        }

    @staticmethod
    def from_payload(payload: Dict[str, Any]) -> "CorpusEntry":
        meta = payload.get("meta")
        if not isinstance(meta, dict) or "coverage_key" not in meta:
            raise ScenarioError("corpus entry needs a 'meta' block with a coverage_key")
        return CorpusEntry(
            scenario=Scenario.from_dict(payload.get("scenario", {})),
            coverage_key=meta["coverage_key"],
            seed=meta.get("seed"),
            signature=meta.get("signature"),
            interesting=bool(meta.get("interesting", False)),
            minimized=bool(meta.get("minimized", False)),
            points=tuple(sorted(meta.get("points", ()))),
        )


class Corpus:
    """A directory of coverage-deduped scenario entries.

    ``root=None`` runs the same dedup logic purely in memory — the
    driver's default when the caller wants a quick fuzz without a
    persistent corpus directory.
    """

    def __init__(self, root=None) -> None:
        self.root = Path(root) if root is not None else None
        self.entries_dir = self.root / "entries" if self.root is not None else None
        self._entries: Dict[str, CorpusEntry] = {}
        self.dedup_hits = 0
        if self.entries_dir is not None:
            self.entries_dir.mkdir(parents=True, exist_ok=True)
            for path in sorted(self.entries_dir.glob("*.json")):
                entry = CorpusEntry.from_payload(json.loads(path.read_text()))
                self._entries[entry.coverage_key] = entry

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, coverage_key: str) -> bool:
        return coverage_key in self._entries

    def __iter__(self) -> Iterator[CorpusEntry]:
        return iter(self._entries[key] for key in sorted(self._entries))

    def get(self, coverage_key: str) -> Optional[CorpusEntry]:
        return self._entries.get(coverage_key)

    def failing(self) -> List[CorpusEntry]:
        """Entries that recorded a failure signature, interesting first."""
        failing = [entry for entry in self if entry.signature is not None]
        return sorted(failing, key=lambda e: (not e.interesting, e.coverage_key))

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def _write(self, entry: CorpusEntry) -> None:
        if self.entries_dir is None:
            return
        path = self.entries_dir / f"{entry.coverage_key}.json"
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(
            json.dumps(entry.to_payload(), sort_keys=True, indent=2) + "\n"
        )
        os.replace(tmp, path)

    def add(self, entry: CorpusEntry) -> bool:
        """Store ``entry`` unless its coverage key is already claimed.

        Returns True for new coverage; a dedup hit bumps ``dedup_hits``
        and changes nothing on disk.
        """
        if entry.coverage_key in self._entries:
            self.dedup_hits += 1
            return False
        self._entries[entry.coverage_key] = entry
        self._write(entry)
        return True

    def replace(self, entry: CorpusEntry) -> None:
        """Overwrite an existing key's entry (e.g. with its minimized form)."""
        self._entries[entry.coverage_key] = entry
        self._write(entry)

    def _delete(self, coverage_key: str) -> None:
        self._entries.pop(coverage_key, None)
        if self.entries_dir is not None:
            try:
                os.unlink(self.entries_dir / f"{coverage_key}.json")
            except OSError:
                pass  # in-memory-only entry, or already gone

    def minimize(self) -> List[CorpusEntry]:
        """Drop entries whose coverage points another entry subsumes.

        Entry A is redundant when some other entry B covers a strict
        superset of A's points — everything A can teach a future
        campaign, B teaches too.  Two guards keep minimization safe:

        * a **failing** entry (one with a signature) is only ever
          subsumed by another entry with the *same* signature — a
          healthy run (or a different bug) covering the same points
          must not evict a reproducer;
        * entries with **no recorded points** (pre-points corpora) have
          unknown contribution and are never dropped.

        Ties (equal point sets, equal failing-ness) keep the
        lexicographically smallest coverage key, so minimization is
        deterministic and idempotent.  Returns the dropped entries.
        """
        entries = [e for e in self if e.points]
        dropped: List[CorpusEntry] = []
        for entry in entries:
            if entry.coverage_key not in self._entries:
                continue  # already dropped this pass
            mine = frozenset(entry.points)
            for other in entries:
                if other.coverage_key == entry.coverage_key:
                    continue
                if other.coverage_key not in self._entries:
                    continue
                if entry.signature is not None and other.signature != entry.signature:
                    continue  # nothing but the same bug evicts a reproducer
                theirs = frozenset(other.points)
                if not (mine <= theirs):
                    continue
                if mine == theirs:
                    # equal coverage: prefer failing over healthy, then
                    # the smaller key (stable under re-runs)
                    if entry.signature is None and other.signature is not None:
                        pass  # other is strictly preferable
                    elif other.coverage_key > entry.coverage_key:
                        continue
                dropped.append(entry)
                self._delete(entry.coverage_key)
                break
        return dropped

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._entries),
            "failing": sum(1 for e in self._entries.values() if e.signature is not None),
            "interesting": sum(1 for e in self._entries.values() if e.interesting),
            "minimized": sum(1 for e in self._entries.values() if e.minimized),
            "dedup_hits": self.dedup_hits,
        }
