"""Seeded fault-schedule generation against a learned app vocabulary.

The generator never guesses blindly: it first runs one fault-free
**probe** of the target application (a deterministic simulator run) and
learns the *vocabulary* faults can be phrased in — which pids exist,
which message kinds actually travel, how long a quiescent run lasts,
and which state paths hold numeric values a :class:`~repro.api.faults.
Corrupt` could mutate.  Every sampled fault is therefore valid by
construction (crashes name real pids, drops match real message kinds,
corruptions address real state), which keeps the fuzzer's executions
spent on *interleavings* instead of on rejected schedules.

Determinism contract: ``generate_scenario(app, seed)`` is a pure
function of ``(app, params, seed, knobs)`` — the probe run is
deterministic, sampling uses a private :class:`random.Random`, and all
sampled floats live on a coarse grid — so the same seed yields
byte-identical canonical scenario JSON in any process.  The property
suite enforces this across a process pool.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.api.faults import (
    Corrupt,
    Crash,
    Delay,
    Drop,
    Duplicate,
    FaultSchedule,
    Partition,
)
from repro.api.scenario import Scenario
from repro.errors import ScenarioError
from repro.scroll.entry import ActionKind

#: sampling grid for fault times (multiples are exact binary floats, so
#: canonical JSON stays byte-stable)
TIME_GRID = 0.5

#: relative weights of the sampled fault kinds
KIND_WEIGHTS = (
    ("crash", 20),
    ("drop", 18),
    ("duplicate", 18),
    ("delay", 14),
    ("partition", 12),
    ("corruption", 18),
)


@dataclass(frozen=True)
class Vocabulary:
    """What faults can talk about for one (app, params) target.

    Attributes
    ----------
    app / params:
        The registry target the vocabulary was learned from.
    pids:
        Every process the probe run built, sorted.
    message_kinds:
        Every message kind the probe observed on the wire, sorted.
    horizon:
        The probe run's quiescent final time — fault times are sampled
        inside it so scheduled faults actually fire.
    int_paths:
        ``(pid, path)`` pairs addressing integer-valued state entries
        (booleans excluded), the targets :class:`Corrupt` ops can hit.
    """

    app: str
    params: Tuple[Tuple[str, Any], ...]
    pids: Tuple[str, ...]
    message_kinds: Tuple[str, ...]
    horizon: float
    int_paths: Tuple[Tuple[str, Tuple[str, ...]], ...]


def _int_paths(
    state: Mapping[str, Any], prefix: Tuple[str, ...] = ()
) -> List[Tuple[str, ...]]:
    """Paths to plain-int leaves of a (possibly nested) state dict."""
    paths: List[Tuple[str, ...]] = []
    for key in sorted(state, key=str):
        if not isinstance(key, str):
            continue  # non-string keys do not survive JSON round-trips
        value = state[key]
        if isinstance(value, bool):
            continue
        if isinstance(value, int):
            paths.append(prefix + (key,))
        elif isinstance(value, dict):
            paths.extend(_int_paths(value, prefix + (key,)))
    return paths


_VOCABULARY_CACHE: Dict[Tuple[str, str, int], Vocabulary] = {}


def vocabulary_for(
    app: str,
    params: Optional[Mapping[str, Any]] = None,
    *,
    probe_seed: int = 7,
    max_events: int = 4000,
) -> Vocabulary:
    """Learn the fault vocabulary of ``app`` from one fault-free probe run.

    The probe is a deterministic simulator run, so the vocabulary — and
    with it every generated schedule — is a pure function of
    ``(app, params, probe_seed)``.  Results are cached per target.
    """
    from repro.api.experiment import execute

    params = dict(params or {})
    cache_key = (app, repr(sorted(params.items())), probe_seed)
    cached = _VOCABULARY_CACHE.get(cache_key)
    if cached is not None:
        return cached
    probe = execute(
        Scenario(
            app=app,
            name=f"fuzz-probe-{app}",
            params=params,
            seed=probe_seed,
            max_events=max_events,
        )
    )
    scroll = probe.fixd.scroll
    kinds = sorted(
        {
            entry.detail["message"]["kind"]
            for entry in scroll.of_kind(ActionKind.SEND)
            if "message" in entry.detail
        }
    )
    # Corruption targets must hold an int at *any* injection time, not
    # just at quiescence — lazily created dict entries (a client's
    # observed_versions) or late-bound values (leader: None -> 3) would
    # make an early "add" op blow up the run.  A second, early-cut probe
    # bounds the window: keep only paths that are int leaves both right
    # after startup and at quiescence.
    early = execute(
        Scenario(
            app=app,
            name=f"fuzz-probe-early-{app}",
            params=params,
            seed=probe_seed,
            max_events=max(1, min(60, max_events)),
        )
    )
    early_paths = {
        (pid, path)
        for pid, state in early.outcome.final_states.items()
        for path in _int_paths(state)
    }
    final_states = probe.outcome.final_states
    int_paths: List[Tuple[str, Tuple[str, ...]]] = []
    for pid in sorted(final_states):
        for path in _int_paths(final_states[pid]):
            if (pid, path) in early_paths:
                int_paths.append((pid, path))
    vocabulary = Vocabulary(
        app=app,
        params=tuple(sorted(params.items())),
        pids=tuple(sorted(final_states)),
        message_kinds=tuple(kinds),
        horizon=max(2.0, float(probe.outcome.final_time)),
        int_paths=tuple(int_paths),
    )
    _VOCABULARY_CACHE[cache_key] = vocabulary
    return vocabulary


def _grid_time(rng: random.Random, horizon: float, *, lowest: float = TIME_GRID) -> float:
    """A sampled time on the grid, strictly positive and inside the horizon."""
    steps = max(1, int(horizon / TIME_GRID))
    return max(lowest, TIME_GRID * rng.randint(1, steps))


def _sample_match(rng: random.Random, values: Tuple[str, ...]) -> Optional[str]:
    """Mostly-specific match predicate: None (match all) one time in three."""
    if not values or rng.random() < 1 / 3:
        return None
    return rng.choice(values)


def _sample_fault(rng: random.Random, vocabulary: Vocabulary):
    """One fault spec sampled from the vocabulary, or None when the kind
    cannot be phrased against this target (e.g. a partition of one pid)."""
    kinds = [kind for kind, _ in KIND_WEIGHTS]
    weights = [weight for _, weight in KIND_WEIGHTS]
    kind = rng.choices(kinds, weights=weights, k=1)[0]
    horizon = vocabulary.horizon
    if kind == "crash":
        pid = rng.choice(vocabulary.pids)
        at = _grid_time(rng, horizon)
        if rng.random() < 0.6:
            recover_at = at + _grid_time(rng, horizon / 2)
            return Crash(pid=pid, at=at, recover_at=recover_at)
        return Crash(pid=pid, at=at)
    if kind in ("drop", "duplicate", "delay"):
        spec_class = {"drop": Drop, "duplicate": Duplicate, "delay": Delay}[kind]
        kwargs: Dict[str, Any] = {
            "match_kind": _sample_match(rng, vocabulary.message_kinds),
            "match_src": _sample_match(rng, vocabulary.pids),
            "match_dst": _sample_match(rng, vocabulary.pids),
            "count": rng.choices([1, 2, 3, None], weights=[5, 3, 2, 1], k=1)[0],
            "after": rng.choice([0.0, _grid_time(rng, horizon)]),
        }
        if kind == "delay":
            kwargs["extra_delay"] = _grid_time(rng, 5.0)
        return spec_class(**kwargs)
    if kind == "partition":
        if len(vocabulary.pids) < 2:
            return None
        pids = list(vocabulary.pids)
        rng.shuffle(pids)
        split = rng.randint(1, len(pids) - 1)
        groups = (tuple(sorted(pids[:split])), tuple(sorted(pids[split:])))
        start = _grid_time(rng, horizon)
        return Partition(groups=groups, start=start, end=start + _grid_time(rng, horizon / 2))
    if kind == "corruption":
        if not vocabulary.int_paths:
            return None
        pid, path = rng.choice(vocabulary.int_paths)
        # only "set" ops: an "add" needs the leaf to hold a number at
        # injection time, which a *faulted* interleaving can prevent
        # (the probe only proves existence on the fault-free path)
        op = ("set", path, rng.choice([-1000, -5, -1, 0, 7, 999]))
        return Corrupt(
            pid=pid,
            at=_grid_time(rng, horizon),
            ops=(op,),
            description="fuzzed state corruption",
        )
    raise ScenarioError(f"unknown sampled fault kind {kind!r}")  # pragma: no cover


def generate_schedule(
    vocabulary: Vocabulary, seed: int, *, max_faults: int = 4
) -> FaultSchedule:
    """A non-empty fault schedule sampled deterministically from ``seed``."""
    if max_faults < 1:
        raise ScenarioError("generate_schedule needs max_faults >= 1")
    rng = random.Random(seed)
    target = rng.randint(1, max_faults)
    faults = []
    attempts = 0
    while len(faults) < target and attempts < target * 8:
        attempts += 1
        spec = _sample_fault(rng, vocabulary)
        if spec is not None:
            faults.append(spec)
    if not faults:
        # degenerate vocabulary (no pids would already have failed the
        # probe); fall back to the one always-phrasable fault
        faults.append(Crash(pid=vocabulary.pids[0], at=TIME_GRID))
    return FaultSchedule(faults=tuple(faults))


def generate_scenario(
    app: str,
    seed: int,
    params: Optional[Mapping[str, Any]] = None,
    *,
    vocabulary: Optional[Vocabulary] = None,
    max_faults: int = 4,
    max_events: int = 4000,
    check: str = "default",
    name: Optional[str] = None,
) -> Scenario:
    """One candidate scenario, a pure function of ``(app, params, seed)``.

    The run seed varies with the generator seed too, so the fuzzer
    explores both fault interleavings *and* workload nondeterminism.
    Every generated scenario round-trips byte-identically through
    ``Scenario.from_json(s.to_json())`` — all sampled attributes are
    JSON-basic values on coarse grids.
    """
    vocabulary = vocabulary or vocabulary_for(app, params)
    rng = random.Random(seed)
    run_seed = rng.randint(0, 2**20)
    return Scenario(
        app=app,
        name=name or f"fuzz-{app}-{seed:08d}",
        params=dict(params or {}),
        seed=run_seed,
        max_events=max_events,
        faults=generate_schedule(vocabulary, rng.randint(0, 2**30), max_faults=max_faults),
        check=check,
    )
