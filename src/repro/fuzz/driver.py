"""The fuzzing driver: generate → execute → fingerprint → dedup → shrink.

One loop, budgeted by executions and/or wall seconds: sample candidate
scenarios from the seeded generator, fan them out over the same
``ProcessPoolExecutor`` path :class:`~repro.api.experiment.Experiment`
grids use (or run them inline), fingerprint every
:class:`~repro.api.outcome.Outcome` with the coverage signal, keep
coverage-novel scenarios in the corpus, and delta-debug every
substantive failure down to a minimal schedule that reproduces the
identical failure signature.

Minimized failures can be written straight into a suites directory as
regression artefacts: a failure FixD detected *and handled* is saved
with ``expect_violation=True`` (it replays green), anything else is
saved with its recorded failure signature (it replays as an expected
violation) — either way ``python -m repro.api`` and the suite tests
keep it honest forever after.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.api.scenario import Scenario
from repro.api.suite import save_suite, scenario_record
from repro.errors import ScenarioError, ScenarioExecutionError
from repro.fuzz.corpus import Corpus, CorpusEntry
from repro.fuzz.coverage import (
    coverage_key,
    coverage_points,
    coverage_projection,
    is_interesting_failure,
)
from repro.fuzz.generate import generate_scenario, vocabulary_for
from repro.fuzz.shrink import shrink_scenario

Progress = Callable[[str], None]


@dataclass(frozen=True)
class Budget:
    """How much fuzzing to do; whichever limit trips first wins."""

    max_execs: Optional[int] = 200
    max_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_execs is None and self.max_seconds is None:
            raise ScenarioError("a fuzz budget needs max_execs and/or max_seconds")
        if self.max_execs is not None and self.max_execs < 1:
            raise ScenarioError("budget max_execs must be >= 1")
        if self.max_seconds is not None and self.max_seconds <= 0:
            raise ScenarioError("budget max_seconds must be positive")

    @staticmethod
    def coerce(value) -> "Budget":
        """``Budget`` | int (execs) | None (defaults) → a Budget."""
        if value is None:
            return Budget()
        if isinstance(value, Budget):
            return value
        if isinstance(value, int):
            return Budget(max_execs=value)
        raise ScenarioError(
            f"budget must be a Budget or an execution count, got {value!r}"
        )


@dataclass
class MinimizedFailure:
    """One fuzzer-found failure, shrunk to its minimal reproducer."""

    scenario: Scenario
    coverage_key: str
    signature: str
    faults_before: int
    faults_after: int
    shrink_runs: int
    #: where the regression artefact was written (None: no suites_dir)
    suite_path: Optional[str] = None
    #: True when the artefact replays green with expect_violation=True
    replays_green: bool = False
    #: the confirming rerun's machine-readable record (same shape as
    #: ``python -m repro.api --json`` emits)
    record: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.scenario.name,
            "coverage_key": self.coverage_key,
            "signature": self.signature,
            "faults_before": self.faults_before,
            "faults_after": self.faults_after,
            "shrink_runs": self.shrink_runs,
            "suite_path": self.suite_path,
            "replays_green": self.replays_green,
            "record": dict(self.record),
        }


@dataclass
class FuzzReport:
    """What one fuzzing run did."""

    app: str
    seed: int
    execs: int = 0
    elapsed_s: float = 0.0
    new_coverage: int = 0
    dedup_hits: int = 0
    distinct_failures: int = 0
    errors: List[str] = field(default_factory=list)
    minimized: List[MinimizedFailure] = field(default_factory=list)
    corpus_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def execs_per_sec(self) -> float:
        return self.execs / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "app": self.app,
            "seed": self.seed,
            "execs": self.execs,
            "elapsed_s": round(self.elapsed_s, 3),
            "execs_per_sec": round(self.execs_per_sec, 2),
            "new_coverage": self.new_coverage,
            "dedup_hits": self.dedup_hits,
            "distinct_failures": self.distinct_failures,
            "errors": list(self.errors),
            "minimized": [failure.to_dict() for failure in self.minimized],
            "corpus": dict(self.corpus_stats),
        }


def _save_artefact(
    minimized: Scenario,
    signature: str,
    cover_key: str,
    suites_dir,
    runner,
) -> "tuple[Optional[str], bool, Dict[str, Any]]":
    """Write the minimized failure as a replayable suite artefact.

    Preference order: a failure FixD detected and handled is re-labeled
    ``expect_violation=True`` and committed green; everything else is
    committed with its failure signature as the expected replay result.
    Returns (path, replays_green, confirming record).
    """
    suites_dir = Path(suites_dir)
    suites_dir.mkdir(parents=True, exist_ok=True)
    path = suites_dir / f"fuzz_{minimized.app}_{cover_key}.json"
    flipped = replace(minimized, expect_violation=True)
    outcome = runner(flipped)
    if outcome.passed:
        save_suite([flipped], path)
        return str(path), True, scenario_record(outcome)
    outcome = runner(minimized)
    save_suite([minimized], path, expected={minimized.name: signature})
    return str(path), False, scenario_record(outcome, signature)


def fuzz(
    app: str,
    params: Optional[Mapping[str, Any]] = None,
    *,
    seed: int = 0,
    budget=None,
    corpus_dir=None,
    suites_dir=None,
    processes: Optional[int] = None,
    batch: int = 8,
    max_faults: int = 4,
    max_events: int = 4000,
    check: str = "default",
    shrink: bool = True,
    shrink_runs: int = 96,
    progress: Optional[Progress] = None,
) -> FuzzReport:
    """Coverage-guided fault-scenario fuzzing of registered app ``app``.

    Deterministic per ``seed``: the candidate stream, coverage keys and
    shrink results repeat exactly for a fixed budget (wall-seconds
    budgets naturally cut the stream at a machine-dependent point).
    """
    from repro.api.experiment import _run_scenario_task, run_scenario

    budget = Budget.coerce(budget)
    if batch < 1:
        raise ScenarioError("fuzz batch size must be >= 1")
    vocabulary = vocabulary_for(app, params)
    corpus = Corpus(corpus_dir)
    report = FuzzReport(app=app, seed=seed)
    emit = progress or (lambda line: None)
    seen_signatures = {
        entry.signature for entry in corpus if entry.signature is not None
    }
    started = time.monotonic()

    def out_of_budget() -> bool:
        if budget.max_execs is not None and report.execs >= budget.max_execs:
            return True
        if (
            budget.max_seconds is not None
            and time.monotonic() - started >= budget.max_seconds
        ):
            return True
        return False

    def handle(child_seed: int, scenario: Scenario, outcome) -> None:
        report.execs += 1
        cover = coverage_key(outcome)
        points = tuple(sorted(coverage_points(coverage_projection(outcome))))
        signature = outcome.failure_signature()
        interesting = signature is not None and is_interesting_failure(outcome)
        entry = CorpusEntry(
            scenario=scenario,
            coverage_key=cover,
            seed=child_seed,
            signature=signature,
            interesting=interesting,
            points=points,
        )
        if corpus.add(entry):
            report.new_coverage += 1
            emit(
                f"new coverage {cover} via {scenario.name} "
                f"[{scenario.faults.label}]"
                + (" FAILING" if signature else "")
            )
        if not (interesting and signature not in seen_signatures):
            return
        seen_signatures.add(signature)
        if not shrink:
            return
        result = shrink_scenario(
            scenario, signature, runner=run_scenario, max_runs=shrink_runs
        )
        emit(
            f"shrunk {scenario.name}: {result.original_faults} -> "
            f"{result.faults} fault(s) in {result.runs} runs"
        )
        corpus.replace(
            CorpusEntry(
                scenario=result.scenario,
                coverage_key=cover,
                seed=child_seed,
                signature=signature,
                interesting=True,
                minimized=True,
                points=points,
            )
        )
        minimized = MinimizedFailure(
            scenario=result.scenario,
            coverage_key=cover,
            signature=signature,
            faults_before=result.original_faults,
            faults_after=result.faults,
            shrink_runs=result.runs,
        )
        if suites_dir is not None:
            minimized.suite_path, minimized.replays_green, minimized.record = (
                _save_artefact(
                    result.scenario, signature, cover, suites_dir, run_scenario
                )
            )
        report.minimized.append(minimized)

    index = 0

    def next_candidates(n: int):
        nonlocal index
        candidates = []
        for _ in range(n):
            child_seed = seed + index
            candidates.append(
                (
                    child_seed,
                    generate_scenario(
                        app,
                        child_seed,
                        params,
                        vocabulary=vocabulary,
                        max_faults=max_faults,
                        max_events=max_events,
                        check=check,
                        name=f"fuzz-{app}-{index:06d}",
                    ),
                )
            )
            index += 1
        return candidates

    pool = (
        ProcessPoolExecutor(max_workers=processes)
        if processes and processes > 1
        else None
    )
    try:
        while not out_of_budget():
            remaining = (
                budget.max_execs - report.execs
                if budget.max_execs is not None
                else batch
            )
            candidates = next_candidates(max(1, min(batch, remaining)))
            if pool is not None:
                runs = [
                    pool.submit(_run_scenario_task, scenario)
                    for _, scenario in candidates
                ]
            else:
                runs = None
            for position, (child_seed, scenario) in enumerate(candidates):
                # one bad candidate is an error line, not a lost batch
                try:
                    if runs is not None:
                        outcome = runs[position].result()
                    else:
                        outcome = _run_scenario_task(scenario)
                except ScenarioExecutionError as error:
                    report.execs += 1
                    report.errors.append(str(error))
                    emit(f"candidate error: {error}")
                    continue
                handle(child_seed, scenario, outcome)
            elapsed = time.monotonic() - started
            stats = corpus.stats()
            emit(
                f"execs={report.execs} corpus={stats['entries']} "
                f"failing={stats['failing']} minimized={stats['minimized']} "
                f"execs/s={report.execs / elapsed if elapsed > 0 else 0.0:.1f}"
            )
    finally:
        if pool is not None:
            pool.shutdown()
    report.elapsed_s = time.monotonic() - started
    report.dedup_hits = corpus.dedup_hits
    report.distinct_failures = len(seen_signatures)
    report.corpus_stats = corpus.stats()
    return report
