"""``repro.api`` — the declarative public facade of the FixD reproduction.

The paper's pitch is that a developer attaches FixD and gets detection,
bug reporting and recovery *without touching application code*.  This
package is that surface:

* a :class:`Scenario` describes one run as pure data — which registered
  application (:mod:`repro.api.apps`), which backend, seed and limits,
  a composable :class:`FaultSchedule` of injected faults (multi-fault
  scenarios are just longer schedules), and the expectations the run
  must meet;
* an :class:`Experiment` executes one scenario or a whole grid
  (``Experiment.grid(apps=..., backends=..., faults=...)``), optionally
  fanned out over a process pool;
* every run returns a structured :class:`Outcome` — detected /
  reported / rolled back / healed / consistent plus final-state,
  Scroll and transport statistics — instead of a tuple to poke at;
* scenarios serialize canonically (``Scenario.to_json`` /
  ``from_json``) and travel in suite files (:func:`load_suite` /
  :func:`save_suite`, runnable via ``python -m repro.api suite.json``),
  so a fault schedule is a shareable repro artefact.

For custom applications the programming model is re-exported here too
(:class:`Process`, ``handler``, ``invariant``, ``timer_handler``), as
are the orchestration classes (:class:`FixD`, :class:`Cluster`) for
advanced phased workflows that a declarative scenario cannot express.

Quickstart::

    from repro.api import Crash, Experiment, FaultSchedule, Partition, Scenario

    scenario = Scenario(
        app="kvstore",
        params={"replicas": 2, "clients": 1},
        faults=FaultSchedule.of(
            Partition(groups=(("replica0", "client0"), ("replica1",)), start=2.0, end=6.0),
            Crash(pid="replica1", at=3.0, recover_at=8.0),
        ),
        recovering=("replica1",),
    )
    outcome = Experiment([scenario]).run()[0]
    assert outcome.passed and outcome.detected
"""

from repro.api import apps
from repro.api.experiment import (
    Experiment,
    ResumedRun,
    ScenarioRun,
    execute,
    resume_run,
    run_scenario,
)
from repro.api.faults import (
    Corrupt,
    Crash,
    Delay,
    Drop,
    Duplicate,
    FaultSchedule,
    Partition,
)
from repro.api.outcome import Outcome
from repro.api.scenario import Scenario
from repro.api.suite import load_suite, run_suite, save_suite

# Programming model + orchestration re-exports: the facade is the one
# sanctioned import surface for examples and downstream users.
from repro.core.fixd import FixD, FixDConfig, FixDReport
from repro.dsim.cluster import Cluster, ClusterConfig, RunResult
from repro.dsim.message import Message
from repro.dsim.process import ConfiguredFactory, Process, handler, invariant, timer_handler
from repro.errors import ScenarioError, UnknownAppError

__all__ = [
    # declarative layer
    "Scenario",
    "Experiment",
    "ScenarioRun",
    "ResumedRun",
    "resume_run",
    "Outcome",
    "FaultSchedule",
    "Crash",
    "Drop",
    "Duplicate",
    "Delay",
    "Partition",
    "Corrupt",
    "execute",
    "run_scenario",
    "load_suite",
    "save_suite",
    "run_suite",
    "apps",
    "ScenarioError",
    "UnknownAppError",
    # programming model / orchestration
    "FixD",
    "FixDConfig",
    "FixDReport",
    "Cluster",
    "ClusterConfig",
    "RunResult",
    "Message",
    "Process",
    "ConfiguredFactory",
    "handler",
    "invariant",
    "timer_handler",
]
