"""The :class:`Experiment` runner: execute one scenario or a whole grid.

``run_scenario`` is the one-call path from a declarative
:class:`~repro.api.scenario.Scenario` to a structured
:class:`~repro.api.outcome.Outcome`; ``execute`` returns the live
:class:`ScenarioRun` handle (cluster, FixD controller, raw result) for
deep dives — offline replay, investigation, healing — that need more
than the outcome record.  :meth:`Experiment.grid` builds the cross
product of apps x backends x fault schedules x seeds, and ``processes=N``
fans scenario execution out over a process pool (scenarios are pure
data, so they ship to workers as-is).
"""

from __future__ import annotations

import time
import uuid
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Iterable, List, Optional, Sequence

from repro.api import apps as app_registry
from repro.api.faults import FaultSchedule
from repro.api.outcome import Outcome
from repro.api.scenario import Scenario
from repro.core.fixd import FixD, FixDConfig
from repro.dsim.cluster import Cluster, ClusterConfig
from repro.errors import ScenarioError, ScenarioExecutionError
from repro.scroll.interceptor import RecordingPolicy


@dataclass
class ScenarioRun:
    """A completed run with its live objects, for post-run deep dives."""

    scenario: Scenario
    cluster: Any
    fixd: Any
    result: Any
    outcome: Outcome

    def replay_factories(self):
        """Per-pid process factories, e.g. for :class:`~repro.scroll.replayer.Replayer`."""
        return {pid: self.cluster.factory_for(pid) for pid in self.cluster.pids}


def _new_run_id(scenario: Scenario) -> str:
    """A unique, filesystem-safe run id for one execution of ``scenario``.

    The scenario name alone would make repeated executions — or distinct
    scenarios sharing a name — write into the same ``runs/<id>/``
    directory, overwriting run.json and interleaving line indices; the
    random suffix gives every execution its own durable run.
    ``Experiment.resume`` accepts the bare scenario name and resolves it
    to the most recently active matching run.
    """
    return f"{scenario.name}-{uuid.uuid4().hex[:8]}"


def _fixd_config(scenario: Scenario) -> FixDConfig:
    policy = (
        RecordingPolicy(hot_window=scenario.hot_window)
        if scenario.hot_window
        else RecordingPolicy()
    )
    return FixDConfig(
        backend=scenario.backend,
        transport=scenario.transport,
        recording_policy=policy,
        investigate_on_fault=scenario.investigate,
        max_faults_handled=scenario.max_faults_handled,
        auto_commit_interval=scenario.auto_commit_interval,
        checkpoint_store=scenario.checkpoint_store,
        checkpoint_store_path=scenario.store_path,
        run_id=_new_run_id(scenario),
        flush_mode=scenario.flush_mode,
        flush_queue_bytes=scenario.flush_queue_bytes,
    )


def _make_backend(scenario: Scenario):
    if scenario.backend == "sim":
        from repro.dsim.backend import SimBackend

        return SimBackend()
    if scenario.backend == "net":
        from repro.dsim.net_backend import NetBackend, NetBackendOptions

        return NetBackend(NetBackendOptions(time_scale=scenario.time_scale))
    from repro.dsim.backend import MPBackend, MPBackendOptions

    return MPBackend(
        MPBackendOptions(time_scale=scenario.time_scale, transport=scenario.transport)
    )


def execute(scenario: Scenario, fixd_config: Optional[FixDConfig] = None) -> ScenarioRun:
    """Run ``scenario`` end to end and return the live run handle.

    ``fixd_config`` overrides the scenario-derived FixD configuration —
    the escape hatch for non-serializable tuning (custom Investigator
    limits, recording policies) that a JSON artefact cannot carry.
    """
    spec = app_registry.app(scenario.app)
    check = spec.check(scenario.check)
    cluster = Cluster(
        ClusterConfig(seed=scenario.seed, halt_on_violation=False),
        backend=_make_backend(scenario),
    )
    app_registry.build(cluster, scenario.app, **scenario.params)
    fixd = FixD(fixd_config or _fixd_config(scenario))
    fixd.attach(cluster)
    durable = getattr(fixd.time_machine, "durable_store", None)
    if durable is not None:
        # the scenario rides along in run.json so resume can rebuild the
        # same cluster without the process that wrote the store
        durable.set_run_metadata({"scenario": scenario.to_dict()})
    plan = scenario.faults.to_plan()
    if not plan.is_empty():
        cluster.set_failure_plan(plan)
    if scenario.backend in ("mp", "net"):
        result = cluster.run(until=scenario.until)
    else:
        result = cluster.run(until=scenario.until, max_events=scenario.max_events)
    outcome = Outcome.from_run(scenario, cluster, fixd, result, check)
    return ScenarioRun(scenario=scenario, cluster=cluster, fixd=fixd, result=result, outcome=outcome)


def run_scenario(scenario: Scenario) -> Outcome:
    """Run one scenario and return its structured outcome."""
    started = time.monotonic()
    outcome = execute(scenario).outcome
    outcome.wall_time_s = time.monotonic() - started
    return outcome


def _run_scenario_task(scenario: Scenario) -> Outcome:
    """Pool-worker wrapper: attach the scenario name to anything raised.

    ``pool.map(run_scenario, ...)`` re-raises a worker exception in the
    parent with no hint of *which* grid cell died — on a 100-cell grid
    that is a debugging dead end.  The wrapper re-raises as
    :class:`~repro.errors.ScenarioExecutionError` carrying the scenario
    name and the original error text (the original exception object may
    not survive pickling back from the worker, its repr always does).
    """
    try:
        return run_scenario(scenario)
    except ScenarioExecutionError:
        raise
    except Exception as error:
        raise ScenarioExecutionError(scenario.name, f"{type(error).__name__}: {error}") from error


def _scenario_for_resume(payload) -> "tuple[Scenario, str]":
    """Coerce a recorded scenario onto the simulator for resumption.

    Only the simulator can restore checkpoints and cancel in-flight
    events, so a run recorded on the ``mp`` backend (e.g. via a custom
    FixD config that persisted lines for an mp scenario) resumes on a
    rebuilt *sim* cluster.  The coercion happens on the raw payload —
    an mp+disk combination would fail Scenario validation before we
    ever got a chance to fix it up.  Returns the sim scenario and the
    originally recorded backend name.
    """
    payload = dict(payload)
    original_backend = payload.get("backend", "sim")
    if original_backend != "sim":
        payload["backend"] = "sim"
        payload["transport"] = "pipe"
    return Scenario.from_dict(payload), original_backend


def _remaining_faults(schedule: FaultSchedule, flush_time: float):
    """Split a fault schedule at the durable flush point.

    Returns ``(remaining_schedule, pending_recoveries)``: the specs a
    continuation must re-arm (timed faults strictly after
    ``flush_time``; partitions still open; message faults unchanged and
    in their original order — their persisted per-rule hit counts are
    restored separately by :meth:`ResumedRun.continue_run`, which is why
    rule *indices* must survive this split), plus ``(pid, recover_at)``
    pairs for crashes that already happened but whose scheduled recovery
    is still due.
    """
    specs = []
    recoveries = []
    for spec in schedule.faults:
        if spec.kind == "crash":
            if spec.at > flush_time:
                specs.append(spec)
            elif spec.recover_at is not None and spec.recover_at > flush_time:
                recoveries.append((spec.pid, spec.recover_at))
        elif spec.kind == "corruption":
            if spec.at > flush_time:
                specs.append(spec)
        elif spec.kind == "partition":
            if spec.end > flush_time:
                specs.append(spec)
        else:
            specs.append(spec)
    return FaultSchedule(faults=tuple(specs)), recoveries


@dataclass
class ResumedRun:
    """A crashed run rebuilt from its durable store, ready to continue.

    ``cluster`` is started, restored to the last committed recovery
    line, and — when the run persisted its Scroll — **replayed forward**
    through the recorded post-line history: each process re-consumed its
    recorded deliveries, timer firings, random draws and clock reads, so
    states, logical clocks and counters sit at the crash point, not at
    the line.  :meth:`continue_run` then re-attaches a fresh FixD over
    the rebuilt Scroll, re-injects the persisted in-flight events,
    re-arms the scenario's remaining fault schedule, and runs the
    scenario to completion — the continuation appends to the same
    durable run.

    Runs recorded on the ``mp`` backend resume on a rebuilt simulator
    cluster (``original_backend`` records what the run executed on);
    runs from stores that predate Scroll persistence degrade to the old
    quiescent state-only restore (``scroll`` is None, ``continue_run``
    still works but starts from the committed line with no in-flight
    events).
    """

    run_id: str
    scenario: Scenario
    cluster: Any
    #: the durable line manifest that was restored (index, label, blob names)
    manifest: Any
    #: the restored per-process checkpoints, as live ProcessCheckpoint objects
    checkpoints: Any
    #: backend the run was originally recorded on ("sim" or "mp")
    original_backend: str = "sim"
    #: root of the durable store this run resumes from (continuation appends here)
    store_path: Optional[str] = None
    #: the Scroll rebuilt from persisted segments (None: state-only resume)
    scroll: Any = None
    #: the persisted-scroll sidecar manifest (None: state-only resume)
    sidecar: Any = None
    #: the persisted in-flight snapshot ({"deliveries": ..., "timers": ...})
    pending: Any = None
    #: per-pid ForwardReplay reports from the replay-forward pass
    replays: Any = None
    _continued: bool = False

    @property
    def line_index(self) -> int:
        return self.manifest.get("index", 0)

    def states(self):
        """Deep-ish view of every restored process state (pid -> dict)."""
        return {pid: dict(self.cluster.process(pid).state) for pid in sorted(self.checkpoints)}

    def continue_run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> Outcome:
        """Continue the resumed run to completion and return its outcome.

        Re-attaches a fresh FixD (recording onto the rebuilt Scroll, so
        new entries append past the persisted history and keep flushing
        to the same durable run), rebases the entry-seq and message-id
        counters past the persisted frontiers, re-injects the in-flight
        deliveries and timers captured at the last flush, re-arms the
        remaining fault schedule, and runs until ``until`` (default: the
        scenario's own bound).
        """
        from repro.dsim.message import Message, reset_message_ids
        from repro.scroll.entry import reset_entry_seq

        if self._continued:
            raise ScenarioError(
                f"resumed run {self.run_id!r} was already continued; "
                "resume again to continue again"
            )
        self._continued = True
        cluster = self.cluster
        flush_time = 0.0
        if self.sidecar is not None:
            flush_time = float(self.sidecar.get("flush_time", 0.0))
            reset_entry_seq(int(self.sidecar.get("seq_next", 1)))
            reset_message_ids(int(self.sidecar.get("msg_id_next", 1)))
        config = _fixd_config(self.scenario)
        config.run_id = self.run_id
        if self.store_path:
            config.checkpoint_store = "disk"
            config.checkpoint_store_path = self.store_path
        fixd = FixD(config, scroll=self.scroll)
        fixd.attach(cluster)
        backend = cluster.backend
        if self.pending is not None:
            for at, record in self.pending.get("deliveries", ()):
                backend.inject_delivery(Message.from_record(record), at)
            for at, pid, name, payload in self.pending.get("timers", ()):
                backend.inject_timer(pid, name, at, payload)
        remaining, recoveries = _remaining_faults(self.scenario.faults, flush_time)
        plan = remaining.to_plan()
        if not plan.is_empty():
            cluster.set_failure_plan(plan)
            backend._install_failure_plan()
        for pid, recover_at in recoveries:
            backend.inject_recovery(pid, recover_at)
        if self.pending is not None:
            # Re-arm consumed nondeterminism sources captured at the last
            # flush: count-limited message-fault rules continue at their
            # remaining budget instead of firing afresh, and per-channel
            # RNG streams pick up at their recorded draw positions so the
            # continuation's jitter/loss decisions match an uninterrupted
            # run.  (_remaining_faults keeps every message fault at its
            # original rule index, so the persisted counts line up.)
            fault_hits = self.pending.get("fault_hits")
            engine = getattr(backend, "fault_engine", None)
            if fault_hits and engine is not None:
                engine.restore_hits(fault_hits)
            channels = self.pending.get("channels")
            network = getattr(backend, "_network", None)
            if channels and network is not None:
                network.restore_channel_states(channels)
        spec = app_registry.app(self.scenario.app)
        check = spec.check(self.scenario.check)
        result = cluster.run(
            until=until if until is not None else self.scenario.until,
            max_events=max_events if max_events is not None else self.scenario.max_events,
        )
        return Outcome.from_run(self.scenario, cluster, fixd, result, check)


def resume_run(run_id: str, store_path: str) -> ResumedRun:
    """Rebuild a crashed run from disk and replay it forward to the crash point.

    ``run_id`` may be the exact run id or the scenario name: every
    execution gets a uniquely-suffixed run id (see
    :attr:`~repro.api.outcome.Outcome.run_id`), and a bare name resolves
    to the most recently active run recorded for it.  The durable store
    under ``store_path`` is the authority: the scenario recorded in
    ``runs/<run_id>/run.json`` rebuilds the same application on a fresh
    **simulator** cluster (always — only the simulator can restore
    checkpoints; runs recorded on ``mp`` note their original backend on
    the handle), and the newest committed line manifest (every blob
    integrity-validated on read, old manifest schemas migrated up)
    restores process states, vector clocks, RNG draw positions and
    message counters.

    When the run persisted its Scroll (``runs/<run_id>/scroll.json``),
    the recorded window *after* the committed line is then replayed
    forward through each restored process — recorded nondeterminism
    re-applied exactly — so the handle sits at the crash point and
    :meth:`ResumedRun.continue_run` can finish the run.  Stores that
    predate Scroll persistence degrade to the quiescent state-only
    restore.

    Partial flushes are invisible by construction — manifests and
    sidecars are written atomically *after* their blobs — so a run that
    crashed mid-commit resumes from the previous committed state.

    Raises :class:`~repro.errors.CheckpointError` when the run is
    unknown or has no committed lines yet.
    """
    from repro.errors import CheckpointError
    from repro.scroll.replayer import Replayer
    from repro.timemachine import DurableCheckpointStore

    run_id = DurableCheckpointStore.resolve_run_id(store_path, run_id)
    metadata = DurableCheckpointStore.run_metadata(store_path, run_id)
    scenario_payload = metadata.get("scenario")
    if not scenario_payload:
        raise ScenarioError(
            f"durable run {run_id!r} recorded no scenario; cannot rebuild its cluster"
        )
    scenario, original_backend = _scenario_for_resume(scenario_payload)
    manifest, checkpoints = DurableCheckpointStore.restore_line(store_path, run_id)
    cluster = Cluster(
        ClusterConfig(seed=scenario.seed, halt_on_violation=False),
        backend=_make_backend(scenario),
    )
    app_registry.build(cluster, scenario.app, **scenario.params)
    cluster.start()
    cluster.restore_checkpoints(checkpoints)
    scroll = sidecar = pending = None
    replays = {}
    try:
        scroll, sidecar, pending = DurableCheckpointStore.rebuild_scroll(
            store_path, run_id
        )
    except CheckpointError:
        pass  # no persisted Scroll: state-only resume (pre-continuation store)
    if scroll is not None:
        replayer = Replayer(scroll, {}, strict=False)
        for pid in sorted(checkpoints):
            checkpoint = checkpoints[pid]
            from_position = checkpoint.extra.get("scroll_position")
            if not isinstance(from_position, int):
                continue
            # A genesis checkpoint (taken at on_run_start, before any
            # handler executed) predates the recorded effects of
            # on_start — replay must re-run it to rebuild that history.
            genesis = (
                checkpoint.time == 0.0
                and checkpoint.rng_draws == 0
                and checkpoint.sent_count == 0
                and checkpoint.received_count == 0
            )
            replays[pid] = replayer.replay_forward(
                pid,
                cluster.process(pid),
                from_position=from_position,
                start_time=checkpoint.time,
                rng_draws_base=checkpoint.rng_draws,
                run_on_start=genesis,
            )
    return ResumedRun(
        run_id=run_id,
        scenario=scenario,
        cluster=cluster,
        manifest=manifest,
        checkpoints=checkpoints,
        original_backend=original_backend,
        store_path=store_path,
        scroll=scroll,
        sidecar=sidecar,
        pending=pending,
        replays=replays,
    )


class Experiment:
    """A batch of scenarios executed together.

    ``processes=N`` runs scenarios on a process pool (each worker builds
    its own cluster; outcomes come back as pure data).  Scenario order
    is preserved in the returned outcome list either way.
    """

    def __init__(
        self, scenarios: Iterable[Scenario], processes: Optional[int] = None
    ) -> None:
        self.scenarios: List[Scenario] = list(scenarios)
        for scenario in self.scenarios:
            if not isinstance(scenario, Scenario):
                raise ScenarioError(
                    f"experiments run Scenario objects, got {type(scenario).__name__}"
                )
        names = [scenario.name for scenario in self.scenarios]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise ScenarioError(
                f"duplicate scenario name(s) in experiment: {sorted(duplicates)}; "
                "give colliding scenarios explicit names"
            )
        if processes is not None and processes < 1:
            raise ScenarioError("processes must be a positive worker count")
        self.processes = processes
        self.outcomes: List[Outcome] = []

    @classmethod
    def grid(
        cls,
        apps: Sequence[str],
        faults: Sequence[FaultSchedule] = (FaultSchedule(),),
        backends: Sequence[str] = ("sim",),
        seeds: Sequence[int] = (7,),
        transports: Sequence[str] = ("pipe",),
        processes: Optional[int] = None,
        **scenario_overrides,
    ) -> "Experiment":
        """The cross product apps x faults x backends x transports x seeds.

        Extra keyword arguments become :class:`Scenario` fields shared
        by every cell (``params=...``, ``until=...``, ``hot_window=...``).
        The ``transports`` axis applies to ``mp`` cells only — the
        simulator has no transport and ``net`` is always sockets, so
        ``sim``/``net`` cells are emitted once regardless of how many
        transports are listed.

        Axes may be any iterable, including generators: every axis is
        materialized exactly once up front (the cross product iterates
        each axis many times — a generator would silently drain after
        the first pass and leave the grid empty).
        """
        apps = tuple(apps)
        backends = tuple(backends)
        seeds = tuple(seeds)
        faults = tuple(faults)
        for schedule in faults:
            if not isinstance(schedule, FaultSchedule):
                raise ScenarioError(
                    "grid faults must be FaultSchedule instances "
                    f"(got {type(schedule).__name__}); wrap specs with FaultSchedule.of(...)"
                )
        transports = tuple(transports)
        # Two schedules with the same kind-set share a label; qualify the
        # label with the schedule's grid position so cell names never collide.
        labels = [schedule.label for schedule in faults]
        fault_tags = [
            label if labels.count(label) == 1 else f"{label}#{index}"
            for index, label in enumerate(labels)
        ]
        scenarios = []
        many_seeds = len(seeds) > 1
        for app_name in apps:
            for backend in backends:
                cell_transports = transports if backend == "mp" else ["pipe"]
                for transport in cell_transports:
                    for schedule, fault_tag in zip(faults, fault_tags):
                        for seed in seeds:
                            name = f"{app_name}-{fault_tag}-{backend}"
                            if transport != "pipe":
                                name += f"-{transport}"
                            if many_seeds:
                                name += f"-s{seed}"
                            scenarios.append(
                                Scenario(
                                    app=app_name,
                                    name=name,
                                    backend=backend,
                                    faults=schedule,
                                    seed=seed,
                                    transport=transport,
                                    **scenario_overrides,
                                )
                            )
        if not scenarios:
            empty = [
                axis
                for axis, values in (
                    ("apps", apps),
                    ("faults", faults),
                    ("backends", backends),
                    ("seeds", seeds),
                    ("transports", transports),
                )
                if not values
            ]
            raise ScenarioError(
                f"experiment grid is empty (no values on axis: {empty}); "
                "every axis needs at least one entry"
            )
        return cls(scenarios, processes=processes)

    @staticmethod
    def fuzz(app: str, *, budget=None, **kwargs):
        """Coverage-guided fault-scenario fuzzing against registered app ``app``.

        Delegates to :func:`repro.fuzz.fuzz` (imported lazily — the fuzz
        package builds on this module): generates seeded fault
        schedules, fans them out over the same process-pool path
        ``Experiment(processes=N)`` uses, keeps the coverage-novel ones
        in a corpus, and delta-debugs every failing schedule down to a
        minimal reproducer.  ``budget`` is a :class:`repro.fuzz.Budget`
        (or ``max_execs=``/``max_seconds=`` via ``kwargs``); returns the
        :class:`repro.fuzz.FuzzReport`.
        """
        from repro.fuzz import fuzz as _fuzz

        return _fuzz(app, budget=budget, **kwargs)

    @staticmethod
    def resume(run_id: str, store_path: str) -> ResumedRun:
        """Resume a crashed run from its durable checkpoint store.

        ``run_id`` is the exact id (``Outcome.run_id``) or the scenario
        name, which resolves to its most recently active run.  See
        :func:`resume_run`; exposed here because "the experiment died,
        pick it back up" is an experiment-level operation.
        """
        return resume_run(run_id, store_path)

    def run(self) -> List[Outcome]:
        """Execute every scenario; outcomes are returned and kept on the object."""
        if self.processes and len(self.scenarios) > 1:
            with ProcessPoolExecutor(max_workers=self.processes) as pool:
                self.outcomes = list(pool.map(_run_scenario_task, self.scenarios))
        else:
            self.outcomes = [_run_scenario_task(scenario) for scenario in self.scenarios]
        return self.outcomes

    @property
    def passed(self) -> bool:
        return bool(self.outcomes) and all(outcome.passed for outcome in self.outcomes)

    def failures(self) -> List[Outcome]:
        return [outcome for outcome in self.outcomes if not outcome.passed]

    def describe(self) -> str:
        """A per-scenario summary table (run() first)."""
        if not self.outcomes:
            return f"experiment with {len(self.scenarios)} scenario(s), not yet run"
        return "\n".join(outcome.summary() for outcome in self.outcomes)
