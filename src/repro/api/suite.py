"""Scenario suite files: fault schedules as shareable repro artefacts.

A suite file is a JSON document holding one or more serialized
scenarios::

    {
      "version": 1,
      "scenarios": [ { ...Scenario.to_dict()... }, ... ]
    }

``load_suite`` turns it back into :class:`~repro.api.scenario.Scenario`
objects; ``run_suite`` executes it and reports pass/fail — the same
entry point ``python -m repro.api <suite.json>`` uses, so a suite file
attached to a bug report reproduces the run with no test code at all.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Tuple

from repro.api.scenario import Scenario
from repro.errors import ScenarioError

SUITE_VERSION = 1


def save_suite(scenarios: Iterable[Scenario], path) -> Path:
    """Write scenarios as a (human-readable) suite file; returns the path."""
    scenarios = list(scenarios)
    if not scenarios:
        raise ScenarioError("refusing to save an empty suite")
    payload = {
        "version": SUITE_VERSION,
        "scenarios": [scenario.to_dict() for scenario in scenarios],
    }
    path = Path(path)
    path.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")
    return path


def load_suite(path) -> List[Scenario]:
    """Load a suite file, failing loudly on malformed content."""
    path = Path(path)
    if not path.exists():
        raise ScenarioError(f"suite file not found: {path}")
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        raise ScenarioError(f"suite file {path} is not valid JSON: {error}") from None
    if not isinstance(payload, dict) or "scenarios" not in payload:
        raise ScenarioError(f"suite file {path} needs a top-level 'scenarios' list")
    version = payload.get("version", SUITE_VERSION)
    if version != SUITE_VERSION:
        raise ScenarioError(f"suite file {path} has unsupported version {version!r}")
    scenarios = [Scenario.from_dict(entry) for entry in payload["scenarios"]]
    if not scenarios:
        raise ScenarioError(f"suite file {path} holds no scenarios")
    return scenarios


def run_suite(path, processes=None) -> Tuple[bool, List[str]]:
    """Run a suite file; returns (all passed, per-scenario summary lines)."""
    from repro.api.experiment import Experiment

    experiment = Experiment(load_suite(path), processes=processes)
    outcomes = experiment.run()
    return experiment.passed, [outcome.summary() for outcome in outcomes]
