"""Scenario suite files: fault schedules as shareable repro artefacts.

A suite file is a JSON document holding one or more serialized
scenarios, plus (optionally) the failure signature each scenario is
*expected* to reproduce::

    {
      "version": 1,
      "scenarios": [ { ...Scenario.to_dict()... }, ... ],
      "expected": { "<scenario name>": "<Outcome.failure_signature()>" }
    }

``load_suite`` turns it back into :class:`~repro.api.scenario.Scenario`
objects; ``run_suite`` executes it and reports pass/fail — the same
entry point ``python -m repro.api <suite.json>`` uses, so a suite file
attached to a bug report reproduces the run with no test code at all.

The ``expected`` block is how fuzzer-minimized artefacts stay green in
CI: a scenario that *fails* its declared expectations still counts as
reproduced when its :meth:`~repro.api.outcome.Outcome.failure_signature`
is byte-equal to the recorded one — the artefact's job is to keep
reproducing that exact failure, not to pass.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.api.outcome import Outcome
from repro.api.scenario import Scenario
from repro.errors import ScenarioError

SUITE_VERSION = 1


def save_suite(
    scenarios: Iterable[Scenario],
    path,
    expected: Optional[Mapping[str, str]] = None,
) -> Path:
    """Write scenarios as a (human-readable) suite file; returns the path.

    ``expected`` maps scenario names to the failure signature a replay
    must reproduce (see :func:`run_suite_records`); scenarios without an
    entry must simply pass their declared expectations.
    """
    scenarios = list(scenarios)
    if not scenarios:
        raise ScenarioError("refusing to save an empty suite")
    payload: Dict[str, Any] = {
        "version": SUITE_VERSION,
        "scenarios": [scenario.to_dict() for scenario in scenarios],
    }
    if expected:
        names = {scenario.name for scenario in scenarios}
        unknown = set(expected) - names
        if unknown:
            raise ScenarioError(
                f"expected signatures name scenarios absent from the suite: {sorted(unknown)}"
            )
        payload["expected"] = dict(sorted(expected.items()))
    path = Path(path)
    path.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")
    return path


def _load_payload(path) -> Dict[str, Any]:
    path = Path(path)
    if not path.exists():
        raise ScenarioError(f"suite file not found: {path}")
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        raise ScenarioError(f"suite file {path} is not valid JSON: {error}") from None
    if not isinstance(payload, dict) or "scenarios" not in payload:
        raise ScenarioError(f"suite file {path} needs a top-level 'scenarios' list")
    version = payload.get("version", SUITE_VERSION)
    if version != SUITE_VERSION:
        raise ScenarioError(f"suite file {path} has unsupported version {version!r}")
    return payload


def load_suite(path) -> List[Scenario]:
    """Load a suite file, failing loudly on malformed content."""
    payload = _load_payload(path)
    scenarios = [Scenario.from_dict(entry) for entry in payload["scenarios"]]
    if not scenarios:
        raise ScenarioError(f"suite file {path} holds no scenarios")
    return scenarios


def load_expected_signatures(path) -> Dict[str, str]:
    """The suite's recorded failure signatures (empty when none declared)."""
    expected = _load_payload(path).get("expected", {})
    if not isinstance(expected, dict):
        raise ScenarioError(f"suite file {path} 'expected' must map names to signatures")
    return dict(expected)


def scenario_record(
    outcome: Outcome, expected_signature: Optional[str] = None
) -> Dict[str, Any]:
    """One scenario result as a machine-readable record.

    The shared shape of ``python -m repro.api --json`` output and the
    fuzz driver's per-execution bookkeeping — both sides of the
    fuzz-found-artefact loop speak this record.

    ``ok`` is the CI verdict: the scenario either met its declared
    expectations, or reproduced exactly the failure signature the suite
    recorded for it.
    """
    signature = outcome.failure_signature()
    reproduced = expected_signature is not None and signature == expected_signature
    return {
        "name": outcome.scenario_id,
        "app": outcome.app,
        "backend": outcome.backend,
        "passed": outcome.passed,
        "failures": list(outcome.failures),
        "failure_signature": signature,
        "expected_signature": expected_signature,
        "reproduced_expected": reproduced,
        "ok": outcome.passed or reproduced,
        "wall_time_s": round(outcome.wall_time_s, 6),
        "summary": outcome.summary(),
    }


def run_suite_records(path, processes=None) -> Tuple[bool, List[Dict[str, Any]]]:
    """Run a suite file; returns (all ok, per-scenario records).

    A scenario is *ok* when it passes its declared expectations or
    reproduces the failure signature the suite recorded for it.
    """
    from repro.api.experiment import Experiment

    scenarios = load_suite(path)
    expected = load_expected_signatures(path)
    experiment = Experiment(scenarios, processes=processes)
    outcomes = experiment.run()
    records = [
        scenario_record(outcome, expected.get(outcome.scenario_id))
        for outcome in outcomes
    ]
    return all(record["ok"] for record in records), records


def run_suite(path, processes=None) -> Tuple[bool, List[str]]:
    """Run a suite file; returns (all passed, per-scenario summary lines)."""
    ok, records = run_suite_records(path, processes=processes)
    lines = []
    for record in records:
        line = record["summary"]
        if record["reproduced_expected"] and not record["passed"]:
            line += " [reproduced expected failure]"
        lines.append(line)
    return ok, lines
