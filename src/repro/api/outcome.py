"""The structured :class:`Outcome` of running one scenario.

Replaces the tuple-poking of ``(cluster, fixd, result)`` with one
self-describing record: did the run *notice* each injected fault kind
(``observed``/``detected``), what reporting artefacts exist (the
run-level incident report plus per-violation bug-report summaries), did
FixD roll back / heal, does the scenario's consistency check hold over
the final states, did crashed processes come back, and what did the
transport and Scroll storage do.  ``projection()`` is the canonical
deterministic subset — two runs of the same serialized scenario on the
simulator must produce equal projections.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.api.scenario import Scenario
from repro.core.report import incident_report
from repro.scroll.entry import ActionKind


@dataclass
class Outcome:
    """Everything a caller should need to assert about one scenario run."""

    scenario_id: str
    app: str
    backend: str
    #: run shape
    stopped_reason: str = ""
    events_executed: int = 0
    final_time: float = 0.0
    ok: bool = True
    #: detection: per injected fault kind -> evidence seen
    observed: Dict[str, bool] = field(default_factory=dict)
    detected: bool = True
    faults_detected: int = 0
    fault_hits: Dict[str, int] = field(default_factory=dict)
    violations: List[Dict[str, Any]] = field(default_factory=list)
    #: reporting
    incident: str = ""
    reports: int = 0
    bug_reports: List[Dict[str, Any]] = field(default_factory=list)
    #: recovery
    rolled_back: bool = False
    rollbacks: int = 0
    healed: bool = False
    auto_commits: int = 0
    scroll_entries_collected: int = 0
    recovered: Dict[str, bool] = field(default_factory=dict)
    #: consistency
    consistent: bool = True
    #: non-empty when the consistency check itself raised over the final
    #: states (counted as inconsistent: a check that cannot even evaluate
    #: the states it was written for is evidence of a mangled run, the
    #: kind fuzzed fault schedules routinely produce)
    check_error: str = ""
    final_states: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: instrumentation.  On the mp backend ``transport`` carries the
    #: full accounting of the run's data plane — identical keys on the
    #: pipe and shm transports (``pickled_bytes``, ``ring_bytes``,
    #: ``messages_fast``/``messages_pickled``, ...) plus the recording
    #: depth counters batched into worker flushes (``rng_draws``,
    #: ``clock_reads``), so observability does not depend on which
    #: transport a scenario ran on.
    scroll: Dict[str, Any] = field(default_factory=dict)
    transport: Optional[Dict[str, int]] = None
    #: durable checkpoint store counters when the scenario ran with
    #: ``checkpoint_store="disk"`` (lines committed, chunks
    #: written/deduped/reused, logical bytes vs bytes on disk); None on
    #: memory-store runs.  Excluded from the projection: bytes on disk
    #: depend on what earlier runs left in a shared store.
    store: Optional[Dict[str, int]] = None
    #: the unique durable run id this execution wrote under (scenario
    #: name + random suffix) — what ``Experiment.resume`` restores by;
    #: None on memory-store runs.  Excluded from the projection: the
    #: suffix differs between executions by design.
    run_id: Optional[str] = None
    #: wall-clock seconds the execution took (set by ``run_scenario``).
    #: Excluded from the projection: wall time is not deterministic.
    wall_time_s: float = 0.0
    #: expectation evaluation (empty == passed)
    failures: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when every expectation the scenario declared was met."""
        return not self.failures

    @property
    def reported(self) -> bool:
        """An artefact a developer could act on exists."""
        return bool(self.incident)

    def summary(self) -> str:
        """One-line human summary for suite runners and experiment tables."""
        status = "PASS" if self.passed else "FAIL"
        tail = "" if self.passed else f" failures={self.failures}"
        return (
            f"{self.scenario_id} [{self.backend}] {status}: detected={self.detected} "
            f"violations={len(self.violations)} reports={self.reports} "
            f"rolled_back={self.rolled_back} healed={self.healed} "
            f"consistent={self.consistent} stopped={self.stopped_reason} "
            f"events={self.events_executed}{tail}"
        )

    def projection(self) -> Dict[str, Any]:
        """The deterministic, comparable view of the run.

        Two executions of the same serialized scenario on the simulator
        backend must agree on this projection exactly.  Storage- and
        wall-clock-dependent numbers (disk bytes, transport batch sizes)
        are deliberately excluded.
        """
        return {
            "scenario": self.scenario_id,
            "backend": self.backend,
            "stopped_reason": self.stopped_reason,
            "events_executed": self.events_executed,
            "final_time": self.final_time,
            "ok": self.ok,
            "observed": dict(self.observed),
            "detected": self.detected,
            "faults_detected": self.faults_detected,
            "fault_hits": dict(self.fault_hits),
            "violations": [dict(v) for v in self.violations],
            "reports": self.reports,
            "bug_reports": [dict(r) for r in self.bug_reports],
            "rolled_back": self.rolled_back,
            "rollbacks": self.rollbacks,
            "healed": self.healed,
            "recovered": dict(self.recovered),
            "consistent": self.consistent,
            "final_states": self.final_states,
            "scroll_counts": dict(self.scroll.get("counts", {})),
            "scroll_entries": self.scroll.get("entries", 0),
            "failures": list(self.failures),
        }

    def failure_signature(self) -> Optional[str]:
        """A canonical, deterministic fingerprint of *how* this run went wrong.

        ``None`` means the run was boring: every expectation met and no
        invariant violation detected.  Otherwise the signature is
        compact canonical JSON over the failure-shaped outcome fields —
        which invariants fired on which pids, whether the run stayed
        consistent / ok / fully detected, which crashed pids never came
        back, and whether FixD rolled back.  Two runs fail *the same
        way* iff their signatures are byte-equal; the fuzz shrinker
        keeps a smaller schedule only when this signature survives, and
        suite files record it so a committed fuzzer artefact replays as
        an expected violation.
        """
        if self.passed and self.faults_detected == 0:
            return None
        payload = {
            "consistent": self.consistent,
            "ok": self.ok,
            "detected": self.detected,
            "violations": sorted(
                {(v["pid"], v["invariant"]) for v in self.violations}
            ),
            "unrecovered": sorted(
                pid for pid, back in self.recovered.items() if not back
            ),
            "rolled_back": self.rolled_back,
            "reported": self.reported,
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def state_projection(self) -> Dict[str, Dict[str, Any]]:
        """The app-level final states alone (pid -> state dict).

        The continuation-parity view: a run that crashed, resumed and
        continued must end with the same application state as an
        uninterrupted twin, even though run-shape numbers (events
        executed, report counts) legitimately differ across the splice.
        """
        return {pid: dict(state) for pid, state in self.final_states.items()}

    def to_dict(self) -> Dict[str, Any]:
        """The full record (projection + instrumentation + report text)."""
        payload = self.projection()
        payload.update(
            {
                "app": self.app,
                "incident": self.incident,
                "scroll": dict(self.scroll),
                "transport": dict(self.transport) if self.transport else None,
                "auto_commits": self.auto_commits,
                "scroll_entries_collected": self.scroll_entries_collected,
                "store": dict(self.store) if self.store else None,
                "run_id": self.run_id,
            }
        )
        return payload

    # ------------------------------------------------------------------
    # construction from a finished run
    # ------------------------------------------------------------------
    @staticmethod
    def from_run(scenario: Scenario, cluster, fixd, result, check) -> "Outcome":
        """Assemble the outcome of a completed run and evaluate expectations."""
        scroll = fixd.scroll
        counts = scroll.counts_by_kind()
        capabilities = getattr(cluster.backend, "capabilities", frozenset())
        can_rollback = "rollback" in capabilities

        # -- detection evidence per injected fault kind ------------------
        hits = cluster.fault_engine.hit_counts() if cluster.fault_engine else {}
        fault_hits: Dict[str, int] = {}
        for index, spec in enumerate(scenario.faults.message_specs()):
            fault_hits[f"{spec.kind}[{index}]"] = hits.get(index, 0)
        dropped = result.network_stats.get("dropped", 0)
        evidence = {
            "crash": counts.get("crash", 0) > 0,
            "drop": counts.get("drop", 0) > 0 or dropped > 0,
            "duplicate": counts.get("duplicate", 0) > 0,
            "delay": False,  # refined from per-rule hits below
            "partition": counts.get("drop", 0) > 0 or dropped > 0,
            "corruption": counts.get("corruption", 0) > 0,
        }
        for index, spec in enumerate(scenario.faults.message_specs()):
            if hits.get(index, 0) > 0:
                evidence[spec.kind] = True
        observed = {kind: evidence.get(kind, False) for kind in scenario.faults.kinds}
        if scenario.expect_violation:
            observed["violation"] = fixd.detector.fault_count >= 1
        detected = all(observed.values()) if observed else True

        # -- reporting ---------------------------------------------------
        bug_reports = [
            {
                "invariant": report.fault.invariant,
                "pid": report.fault.pid,
                "handled": report.handled,
                "rolled_back": bool(report.rollback and report.rollback.restored_pids),
                "healed": report.healed,
                "scroll_tail_entries": len(report.bug_report.scroll_tail),
            }
            for report in fixd.reports
        ]

        # -- recovery ----------------------------------------------------
        # The simulator's frontend instances carry live state (checkpoint
        # capability); on other substrates the evidence is the Scroll's
        # RECOVER entry plus the worker's shipped final state.
        frontend_live = "checkpoint" in capabilities
        recovered = {}
        if scenario.recovering:
            recovered_pids = {
                entry.pid
                for entry in scroll.of_kind(ActionKind.RECOVER)
            }
            for pid in scenario.recovering:
                if frontend_live:
                    recovered[pid] = not cluster.process(pid).crashed
                else:
                    recovered[pid] = pid in recovered_pids and pid in result.process_states
        committer = getattr(fixd, "auto_committer", None)

        # -- consistency -------------------------------------------------
        final_states = result.process_states
        try:
            consistent = bool(check(final_states))
            check_error = ""
        except Exception as error:  # a raising check is a failing check
            consistent = False
            check_error = f"{type(error).__name__}: {error}"

        storage = scroll.storage_stats()
        # Per-pid entry-kind sequences: the raw material of the fuzz
        # coverage signal (repro.fuzz.coverage n-grams over them).  The
        # Scroll's seq order is the recorded total order, so the
        # sequences are deterministic for a deterministic run.
        kind_sequences: Dict[str, List[str]] = {}
        for entry in scroll.entries:
            kind_sequences.setdefault(entry.pid, []).append(entry.kind.value)
        durable = getattr(fixd.time_machine, "durable_store", None)
        outcome = Outcome(
            scenario_id=scenario.name,
            app=scenario.app,
            backend=scenario.backend,
            stopped_reason=result.stopped_reason,
            events_executed=result.events_executed,
            final_time=result.final_time,
            ok=result.ok,
            observed=observed,
            detected=detected,
            faults_detected=fixd.detector.fault_count,
            fault_hits=fault_hits,
            violations=[
                {
                    "pid": v.pid,
                    "invariant": v.invariant,
                    "handled": v.handled,
                    "time": v.time,
                }
                for v in result.violations
            ],
            incident=incident_report(cluster.failure_plan, scroll, result),
            reports=len(fixd.reports),
            bug_reports=bug_reports,
            rolled_back=any(r["rolled_back"] for r in bug_reports),
            rollbacks=sum(1 for r in bug_reports if r["rolled_back"]),
            healed=any(r["healed"] for r in bug_reports),
            auto_commits=committer.commits if committer else 0,
            scroll_entries_collected=committer.entries_collected if committer else 0,
            recovered=recovered,
            consistent=consistent,
            check_error=check_error,
            final_states=final_states,
            scroll={
                "entries": len(scroll),
                "counts": counts,
                "storage": storage,
                "kind_sequences": kind_sequences,
            },
            transport=dict(getattr(cluster.backend, "transport_stats", None) or {}) or None,
            store=durable.stats() if durable is not None else None,
            run_id=durable.run_id if durable is not None else None,
        )
        outcome.failures = _evaluate_expectations(scenario, outcome, can_rollback)
        return outcome


def _evaluate_expectations(
    scenario: Scenario, outcome: Outcome, can_rollback: bool
) -> List[str]:
    """The scenario's declared promises, checked against the outcome."""
    failures: List[str] = []
    if not outcome.detected:
        missed = sorted(kind for kind, seen in outcome.observed.items() if not seen)
        failures.append(f"injected fault kind(s) never observed: {missed}")
    if not outcome.consistent:
        detail = f" ({outcome.check_error})" if outcome.check_error else ""
        failures.append(
            f"consistency check {scenario.check!r} failed over the final states{detail}"
        )
    if not outcome.reported:
        failures.append("no incident report was assembled")
    for pid, back in outcome.recovered.items():
        if not back:
            failures.append(f"process {pid!r} did not recover from its crash")
    if scenario.expect_violation:
        if outcome.faults_detected < 1:
            failures.append("expected an invariant violation; none was detected")
        if outcome.reports < 1:
            failures.append("expected a FixD bug report; none was produced")
        if can_rollback:
            unhandled = [r for r in outcome.bug_reports if not r["handled"]]
            if unhandled:
                failures.append(f"{len(unhandled)} provoked fault(s) not handled")
            if outcome.bug_reports and not outcome.rolled_back:
                failures.append("expected a rollback; none restored any process")
            if not outcome.ok:
                failures.append("run ended with unhandled violations")
    elif not outcome.ok:
        failures.append("run ended with unhandled violations")
    return failures
