"""Facade re-exports for the model-checking toolkit (ModelD + CMC).

The Investigator's front-end DSL and engines are part of the public
surface — examples and downstream code should reach them through
``repro.api.modelcheck`` rather than spelunking ``repro.investigator``
module paths.
"""

from repro.investigator.cmc import CMCChecker, CMCConfig
from repro.investigator.explorer import SearchOrder
from repro.investigator.frontend import ModelBuilder
from repro.investigator.guarded import Action
from repro.investigator.heap import SimulatedHeap
from repro.investigator.investigator import Investigator, InvestigatorConfig
from repro.investigator.modeld import ModelD, ModelDConfig

__all__ = [
    "Action",
    "CMCChecker",
    "CMCConfig",
    "Investigator",
    "InvestigatorConfig",
    "ModelBuilder",
    "ModelD",
    "ModelDConfig",
    "SearchOrder",
    "SimulatedHeap",
]
