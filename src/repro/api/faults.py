"""Declarative, serializable fault specifications and composable schedules.

The execution layer's :class:`~repro.dsim.failure.FailurePlan` is already
declarative, but it is not a *shareable artefact*: corruption faults
carry arbitrary callables and the plan classes have no canonical JSON
form.  This module defines the facade-level fault vocabulary —
:class:`Crash`, :class:`Drop`, :class:`Duplicate`, :class:`Delay`,
:class:`Partition`, :class:`Corrupt` — as pure-data frozen dataclasses
that

* round-trip losslessly through JSON (state corruption is expressed as
  a small list of ``(op, path, value)`` mutation instructions instead of
  a callable), and
* compile onto the execution layer with :meth:`FaultSchedule.to_plan`.

A :class:`FaultSchedule` composes any number of specs into one run's
worth of injected trouble — multi-fault scenarios (a crash during a
partition, corruption under a duplicate storm) are just schedules with
more than one entry.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, ClassVar, Dict, Iterable, List, Optional, Tuple

from repro.dsim.failure import (
    CrashFault,
    FailurePlan,
    MessageFault,
    PartitionFault,
    StateCorruptionFault,
)
from repro.errors import ScenarioError

#: message-fault spec kinds (compile to :class:`MessageFault` rules, in
#: schedule order — rule index ``i`` is the schedule's ``i``-th such spec)
MESSAGE_KINDS = ("drop", "duplicate", "delay")


def _quantize(value: float) -> float:
    """Shrunk float attributes stay on a coarse grid so canonical JSON stays tidy."""
    return round(value, 3)


def _freeze(value: Any) -> Any:
    """Lists arriving from JSON become tuples so specs stay hashable data."""
    if isinstance(value, list):
        return tuple(_freeze(item) for item in value)
    return value


def _thaw(value: Any) -> Any:
    """Tuples become lists on the way out to JSON."""
    if isinstance(value, tuple):
        return [_thaw(item) for item in value]
    return value


@dataclass(frozen=True)
class Crash:
    """Crash ``pid`` at ``at``; optionally recover it at ``recover_at``."""

    kind: ClassVar[str] = "crash"
    #: removal preference for the fuzz shrinker: lower values are tried
    #: first (a crash reshapes the whole run, so it goes last)
    shrink_order: ClassVar[int] = 5

    pid: str
    at: float
    recover_at: Optional[float] = None
    recover_from_checkpoint: bool = True

    def __post_init__(self) -> None:
        if self.recover_at is not None and self.recover_at <= self.at:
            raise ScenarioError(
                f"crash of {self.pid!r}: recovery at {self.recover_at} must come "
                f"strictly after the crash at {self.at}"
            )

    def shrink_candidates(self) -> List["Crash"]:
        """Strictly simpler variants, in preference order.

        Candidates only *propose*; the shrinker keeps one iff the run's
        failure signature survives the substitution.
        """
        candidates = []
        if self.recover_at is not None:
            candidates.append(
                Crash(self.pid, self.at, recover_at=None, recover_from_checkpoint=self.recover_from_checkpoint)
            )
        return candidates

    def to_fault(self) -> CrashFault:
        return CrashFault(
            self.pid,
            at=self.at,
            recover_at=self.recover_at,
            recover_from_checkpoint=self.recover_from_checkpoint,
        )


@dataclass(frozen=True)
class _MessageSpec:
    """Shared shape of the three message-fault flavours."""

    kind: ClassVar[str]
    shrink_order: ClassVar[int] = 2

    match_kind: Optional[str] = None
    match_src: Optional[str] = None
    match_dst: Optional[str] = None
    count: Optional[int] = 1
    after: float = 0.0

    def _extra_delay(self) -> float:
        return 0.0

    def _replace(self, **changes):
        payload = spec_to_dict(self)
        payload.update(changes)
        return spec_from_dict(payload)

    def shrink_candidates(self) -> List[Any]:
        """Simpler variants: fewer hits first, then an untimed rule."""
        candidates = []
        if self.count is None or self.count > 1:
            candidates.append(self._replace(count=1))
        if self.after > 0.0:
            candidates.append(self._replace(after=0.0))
        return candidates

    def to_fault(self) -> MessageFault:
        return MessageFault(
            self.kind,
            match_kind=self.match_kind,
            match_src=self.match_src,
            match_dst=self.match_dst,
            count=self.count,
            extra_delay=self._extra_delay(),
            after=self.after,
        )


@dataclass(frozen=True)
class Drop(_MessageSpec):
    """Drop up to ``count`` messages matching the predicates (``None`` = all)."""

    kind: ClassVar[str] = "drop"
    shrink_order: ClassVar[int] = 2


@dataclass(frozen=True)
class Duplicate(_MessageSpec):
    """Deliver matching messages twice."""

    kind: ClassVar[str] = "duplicate"
    shrink_order: ClassVar[int] = 1


@dataclass(frozen=True)
class Delay(_MessageSpec):
    """Delay matching messages by ``extra_delay`` simulated time units."""

    kind: ClassVar[str] = "delay"
    shrink_order: ClassVar[int] = 0

    extra_delay: float = 1.0

    def __post_init__(self) -> None:
        if self.extra_delay <= 0:
            raise ScenarioError("delay faults need a positive extra_delay")

    def _extra_delay(self) -> float:
        return self.extra_delay

    def shrink_candidates(self) -> List[Any]:
        candidates = super().shrink_candidates()
        if self.extra_delay > 1.0:
            # halve toward the unit delay, staying on a tidy grid
            candidates.append(self._replace(extra_delay=max(1.0, _quantize(self.extra_delay / 2))))
            candidates.append(self._replace(extra_delay=1.0))
        return candidates


@dataclass(frozen=True)
class Partition:
    """Split the network into ``groups`` during ``[start, end)``."""

    kind: ClassVar[str] = "partition"
    shrink_order: ClassVar[int] = 3

    groups: Tuple[Tuple[str, ...], ...]
    start: float
    end: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "groups", _freeze(self.groups))
        if self.end <= self.start:
            raise ScenarioError("partition end must come strictly after its start")
        if len(self.groups) < 2:
            raise ScenarioError("a partition needs at least two groups")

    def to_fault(self) -> PartitionFault:
        return PartitionFault(groups=[list(group) for group in self.groups], start=self.start, end=self.end)

    def shrink_candidates(self) -> List["Partition"]:
        """Narrow the healed-at-``end`` window toward the start."""
        candidates = []
        width = self.end - self.start
        if width > 0.2:
            midpoint = _quantize(self.start + width / 2)
            if midpoint > self.start:
                candidates.append(Partition(self.groups, self.start, midpoint))
        return candidates


#: mutation opcodes understood by :class:`Corrupt`
_CORRUPT_OPS = ("set", "add", "append")


def apply_corruption_ops(state: Dict[str, Any], ops: Iterable[Tuple[Any, ...]]) -> None:
    """Apply ``(op, path, value)`` instructions to a state dict in place."""
    for op, path, value in ops:
        target = state
        for key in path[:-1]:
            target = target[key]
        leaf = path[-1]
        if op == "set":
            target[leaf] = value
        elif op == "add":
            target[leaf] = target[leaf] + value
        elif op == "append":
            target[leaf].append(value)
        else:  # pragma: no cover - rejected at construction
            raise ScenarioError(f"unknown corruption op {op!r}")


@dataclass(frozen=True)
class Corrupt:
    """Silently mutate ``pid``'s local state at time ``at``.

    The paper's "software bug" fault class — only an invariant check can
    notice.  Instead of an arbitrary callable, the mutation is a tuple of
    ``(op, path, value)`` instructions (``op`` one of ``set``/``add``/
    ``append``, ``path`` a key path into the state dict), so corruption
    scenarios serialize and travel as repro artefacts.
    """

    kind: ClassVar[str] = "corruption"
    shrink_order: ClassVar[int] = 4

    pid: str
    at: float
    ops: Tuple[Tuple[Any, ...], ...]
    description: str = "state corruption"

    def __post_init__(self) -> None:
        object.__setattr__(self, "ops", _freeze(self.ops))
        if not self.ops:
            raise ScenarioError("a corruption needs at least one (op, path, value) instruction")
        for entry in self.ops:
            if len(entry) != 3:
                raise ScenarioError(f"corruption op must be (op, path, value), got {entry!r}")
            op, path, _value = entry
            if op not in _CORRUPT_OPS:
                raise ScenarioError(f"unknown corruption op {op!r}; expected one of {_CORRUPT_OPS}")
            if not isinstance(path, tuple) or not path:
                raise ScenarioError(f"corruption path must be a non-empty key sequence, got {path!r}")

    def to_fault(self) -> StateCorruptionFault:
        ops = self.ops
        return StateCorruptionFault(
            pid=self.pid,
            at=self.at,
            mutator=lambda state: apply_corruption_ops(state, ops),
            description=self.description,
        )

    def shrink_candidates(self) -> List["Corrupt"]:
        """Try each single mutation instruction on its own."""
        if len(self.ops) <= 1:
            return []
        return [
            Corrupt(self.pid, self.at, (op,), description=self.description)
            for op in self.ops
        ]


#: JSON ``kind`` discriminator -> spec class
SPEC_TYPES = {
    spec.kind: spec for spec in (Crash, Drop, Duplicate, Delay, Partition, Corrupt)
}


def spec_to_dict(spec) -> Dict[str, Any]:
    """One fault spec as a JSON-ready dict tagged with its ``kind``."""
    payload: Dict[str, Any] = {"kind": spec.kind}
    for spec_field in fields(spec):
        payload[spec_field.name] = _thaw(getattr(spec, spec_field.name))
    return payload


def spec_from_dict(payload: Dict[str, Any]):
    """Rebuild a fault spec from its tagged dict, failing loudly on junk."""
    if not isinstance(payload, dict) or "kind" not in payload:
        raise ScenarioError(f"fault spec must be a dict with a 'kind' tag, got {payload!r}")
    kind = payload["kind"]
    spec_class = SPEC_TYPES.get(kind)
    if spec_class is None:
        raise ScenarioError(
            f"unknown fault kind {kind!r}; expected one of {sorted(SPEC_TYPES)}"
        )
    known = {spec_field.name for spec_field in fields(spec_class)}
    extra = set(payload) - known - {"kind"}
    if extra:
        raise ScenarioError(f"{kind} fault spec has unknown fields: {sorted(extra)}")
    kwargs = {key: _freeze(value) for key, value in payload.items() if key != "kind"}
    return spec_class(**kwargs)


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered, composable collection of fault specs for one run.

    Order matters for message faults (the engine applies the first
    matching rule), so composition preserves it: ``a + b`` and
    ``schedule.then(spec)`` append.
    """

    faults: Tuple[Any, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        spec_classes = tuple(SPEC_TYPES.values())
        for spec in self.faults:
            if not isinstance(spec, spec_classes):
                raise ScenarioError(
                    f"fault schedules hold fault specs, got {type(spec).__name__}"
                )

    @staticmethod
    def of(*faults) -> "FaultSchedule":
        return FaultSchedule(faults=faults)

    def then(self, spec) -> "FaultSchedule":
        return FaultSchedule(faults=self.faults + (spec,))

    def __add__(self, other: "FaultSchedule") -> "FaultSchedule":
        return FaultSchedule(faults=self.faults + tuple(other.faults))

    def __len__(self) -> int:
        return len(self.faults)

    def is_empty(self) -> bool:
        return not self.faults

    @property
    def kinds(self) -> Tuple[str, ...]:
        """Distinct fault kinds in first-appearance order."""
        seen: List[str] = []
        for spec in self.faults:
            if spec.kind not in seen:
                seen.append(spec.kind)
        return tuple(seen)

    @property
    def label(self) -> str:
        """Human-readable tag: ``"crash+partition"`` or ``"fault-free"``."""
        return "+".join(self.kinds) if self.faults else "fault-free"

    def message_specs(self) -> List[Any]:
        """The message-fault specs in rule order (engine rule ``i`` = entry ``i``)."""
        return [spec for spec in self.faults if spec.kind in MESSAGE_KINDS]

    def to_plan(self) -> FailurePlan:
        """Compile the schedule onto the execution layer's failure plan."""
        plan = FailurePlan()
        for spec in self.faults:
            plan.add(spec.to_fault())
        return plan

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [spec_to_dict(spec) for spec in self.faults]

    @staticmethod
    def from_dicts(payloads: Iterable[Dict[str, Any]]) -> "FaultSchedule":
        return FaultSchedule(faults=tuple(spec_from_dict(payload) for payload in payloads))
