"""Run scenario suite files from the command line::

    python -m repro.api suites/crash_during_partition.json [more.json ...]

Exits non-zero when any scenario fails its declared expectations, so a
suite file doubles as a CI gate (see ``make verify``'s suite smoke).
"""

from __future__ import annotations

import sys
from typing import List, Optional

from repro.api.suite import run_suite
from repro.errors import ReproError


def main(argv: Optional[List[str]] = None) -> int:
    paths = sys.argv[1:] if argv is None else list(argv)
    if not paths:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = 0
    for path in paths:
        print(f"== suite {path}")
        try:
            passed, lines = run_suite(path)
        except ReproError as error:
            print(f"  error: {error}", file=sys.stderr)
            failures += 1
            continue
        for line in lines:
            print(f"  {line}")
        if not passed:
            failures += 1
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
