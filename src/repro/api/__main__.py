"""Run scenario suite files from the command line::

    python -m repro.api suites/crash_during_partition.json [more.json ...]
    python -m repro.api --json suites/crash_during_partition.json

Exits non-zero when any scenario fails its declared expectations (and
does not reproduce the suite's recorded failure signature), so a suite
file doubles as a CI gate (see ``make verify``'s suite smoke).

``--json`` emits one machine-readable document on stdout instead of the
human table: per-scenario records (name, pass/fail, failure signature,
wall time) in the same shape the fuzz driver consumes — see
:func:`repro.api.suite.scenario_record`.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.api.suite import run_suite_records
from repro.errors import ReproError


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.api", description=__doc__.strip().splitlines()[0]
    )
    parser.add_argument("suites", nargs="*", help="suite JSON files to run")
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable per-scenario records on stdout",
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=None,
        help="fan scenario execution out over a process pool",
    )
    args = parser.parse_args(sys.argv[1:] if argv is None else list(argv))
    if not args.suites:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = 0
    documents = []
    for path in args.suites:
        if not args.json:
            print(f"== suite {path}")
        try:
            ok, records = run_suite_records(path, processes=args.processes)
        except ReproError as error:
            if args.json:
                documents.append({"suite": str(path), "error": str(error), "ok": False})
            else:
                print(f"  error: {error}", file=sys.stderr)
            failures += 1
            continue
        if args.json:
            documents.append({"suite": str(path), "ok": ok, "scenarios": records})
        else:
            for record in records:
                line = record["summary"]
                if record["reproduced_expected"] and not record["passed"]:
                    line += " [reproduced expected failure]"
                print(f"  {line}")
        if not ok:
            failures += 1
    if args.json:
        print(json.dumps({"ok": failures == 0, "suites": documents}, sort_keys=True))
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
