"""The :class:`Scenario` — one declarative, shareable description of a run.

A scenario is *data*: which registered application to build (and with
which parameters), which backend executes it, the seed and run limits,
the composable :class:`~repro.api.faults.FaultSchedule` of injected
trouble, and what the run is expected to establish (which consistency
check must hold, whether an invariant violation is provoked, which
crashed processes must be back).  Because every field is a JSON-basic
value, scenarios serialize canonically (:meth:`Scenario.to_json` is
byte-stable) and travel as repro artefacts — the fault schedule that
broke a run *is* the bug report attachment that reproduces it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.api.faults import FaultSchedule
from repro.errors import ScenarioError

BACKENDS = ("sim", "mp", "net")
TRANSPORTS = ("pipe", "shm")
CHECKPOINT_STORES = ("memory", "disk")
FLUSH_MODES = ("sync", "pipelined")


@dataclass(frozen=True)
class Scenario:
    """One run of one application under one fault schedule.

    Attributes
    ----------
    app:
        Name of a registered application (see :mod:`repro.api.apps`).
    name:
        Stable identifier for reports and suite files; defaults to
        ``"<app>-<schedule label>"`` (plus the backend when not ``sim``).
    params:
        Application parameters merged over the registry defaults.
    backend:
        Execution substrate: ``"sim"`` (deterministic simulator, full
        FixD pipeline), ``"mp"`` (real OS processes over pipes/shm
        rings; detection + reporting only) or ``"net"`` (real OS
        processes over sharded socket routers; same capability tier as
        ``mp``).  ``mp``/``net`` scenarios must set ``until``.
    seed / until / max_events:
        Determinism root and run limits (``max_events`` applies to the
        simulator only).
    faults:
        The composable fault schedule; multi-fault scenarios simply
        list several specs.
    check:
        Which of the app's registered consistency checks the outcome
        asserts over the final states.
    expect_violation:
        When true, the schedule is expected to provoke an invariant
        violation that FixD must detect, report and (on capable
        backends) roll back.
    recovering:
        Pids that crash with a scheduled recovery and must be back
        alive at the end of the run.
    hot_window / investigate / max_faults_handled / auto_commit_interval:
        FixD tuning: tiered-Scroll hot window, run the Investigator on
        faults, fault-handling budget, and the periodic recovery-line
        commit interval (Scroll segment GC).
    time_scale:
        Wall seconds per simulated unit on the ``mp``/``net`` backends.
    transport:
        Data plane of the ``mp`` backend: ``"pipe"`` (batched pickled
        pipe writes, the default) or ``"shm"`` (shared-memory rings, no
        pickle on the hot path).  Only meaningful with ``backend="mp"``.
    checkpoint_store / store_path:
        ``"memory"`` keeps recovery lines in-process; ``"disk"`` flushes
        every committed line to a durable content-addressed blob store
        rooted at ``store_path`` (required for ``"disk"``).  Each
        execution writes under a unique run id — the scenario name plus
        a random suffix, reported as ``Outcome.run_id`` — and
        :meth:`Experiment.resume` accepts either that id or the bare
        name (resolved to the most recently active matching run).
        Simulator only, and only lines actually *committed*
        (``auto_commit_interval`` or a manual commit) become durable.
    flush_mode / flush_queue_bytes:
        How committed lines reach the durable store: ``"sync"`` writes
        blobs and manifests inline on the commit path; ``"pipelined"``
        snapshots the payload at commit time and a bounded background
        writer does the blob IO and fsyncs (same crash-window and
        resume guarantees — the queue drains at every ordering-relevant
        boundary).  ``flush_queue_bytes`` bounds the queued payload
        before commits block.  Only meaningful with a ``"disk"`` store.
    """

    app: str
    name: str = ""
    params: Mapping[str, Any] = field(default_factory=dict)
    backend: str = "sim"
    seed: int = 7
    until: Optional[float] = None
    max_events: Optional[int] = 4000
    faults: FaultSchedule = field(default_factory=FaultSchedule)
    check: str = "default"
    expect_violation: bool = False
    recovering: Tuple[str, ...] = ()
    hot_window: Optional[int] = None
    investigate: bool = False
    max_faults_handled: int = 4
    auto_commit_interval: Optional[float] = None
    time_scale: float = 0.01
    transport: str = "pipe"
    checkpoint_store: str = "memory"
    store_path: Optional[str] = None
    flush_mode: str = "sync"
    flush_queue_bytes: int = 32 * 1024 * 1024

    def __post_init__(self) -> None:
        if not self.app or not isinstance(self.app, str):
            raise ScenarioError(f"scenario needs an application name, got {self.app!r}")
        if self.backend not in BACKENDS:
            raise ScenarioError(
                f"unknown backend {self.backend!r}; expected one of {BACKENDS}"
            )
        if not isinstance(self.faults, FaultSchedule):
            raise ScenarioError("scenario faults must be a FaultSchedule")
        if self.transport not in TRANSPORTS:
            raise ScenarioError(
                f"unknown transport {self.transport!r}; expected one of {TRANSPORTS}"
            )
        if self.backend != "mp" and self.transport != "pipe":
            raise ScenarioError(
                f"scenario transport {self.transport!r} is an mp-backend knob; "
                "the simulator has no transport and the net backend is always sockets"
            )
        if self.checkpoint_store not in CHECKPOINT_STORES:
            raise ScenarioError(
                f"unknown checkpoint_store {self.checkpoint_store!r}; "
                f"expected one of {CHECKPOINT_STORES}"
            )
        if self.checkpoint_store == "disk":
            if self.backend != "sim":
                raise ScenarioError(
                    "checkpoint_store='disk' needs the sim backend; the real-process "
                    "backends advertise no checkpoint capability to persist"
                )
            if not self.store_path:
                raise ScenarioError(
                    "checkpoint_store='disk' requires an explicit store_path"
                )
        if self.flush_mode not in FLUSH_MODES:
            raise ScenarioError(
                f"unknown flush_mode {self.flush_mode!r}; "
                f"expected one of {FLUSH_MODES}"
            )
        if self.flush_mode == "pipelined" and self.checkpoint_store != "disk":
            raise ScenarioError(
                "flush_mode='pipelined' is a durable-store knob; it requires "
                "checkpoint_store='disk'"
            )
        if not isinstance(self.flush_queue_bytes, int) or self.flush_queue_bytes < 1:
            raise ScenarioError(
                f"flush_queue_bytes must be a positive int, got {self.flush_queue_bytes!r}"
            )
        object.__setattr__(self, "params", dict(self.params))
        object.__setattr__(self, "recovering", tuple(self.recovering))
        if not self.name:
            suffix = "" if self.backend == "sim" else f"-{self.backend}"
            if self.transport != "pipe":
                suffix += f"-{self.transport}"
            object.__setattr__(self, "name", f"{self.app}-{self.faults.label}{suffix}")
        if any(sep in self.name for sep in ("/", "\\", "\0")) or self.name in (".", ".."):
            raise ScenarioError(
                f"scenario name {self.name!r} must not contain path separators: "
                "it becomes a durable run id, a filesystem path component"
            )
        if self.backend in ("mp", "net") and self.until is None:
            raise ScenarioError(
                f"scenario {self.name!r}: the {self.backend} backend detects "
                "quiescence in wall time, so an explicit until=... bound is required"
            )

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-ready form (every field, schedule as tagged dicts)."""
        return {
            "app": self.app,
            "name": self.name,
            "params": dict(self.params),
            "backend": self.backend,
            "seed": self.seed,
            "until": self.until,
            "max_events": self.max_events,
            "faults": self.faults.to_dicts(),
            "check": self.check,
            "expect_violation": self.expect_violation,
            "recovering": list(self.recovering),
            "hot_window": self.hot_window,
            "investigate": self.investigate,
            "max_faults_handled": self.max_faults_handled,
            "auto_commit_interval": self.auto_commit_interval,
            "time_scale": self.time_scale,
            "transport": self.transport,
            "checkpoint_store": self.checkpoint_store,
            "store_path": self.store_path,
            "flush_mode": self.flush_mode,
            "flush_queue_bytes": self.flush_queue_bytes,
        }

    def to_json(self) -> str:
        """Byte-stable canonical JSON (sorted keys, compact separators)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "Scenario":
        if not isinstance(payload, Mapping):
            raise ScenarioError(f"scenario payload must be an object, got {payload!r}")
        known = {spec_field.name for spec_field in fields(Scenario)}
        extra = set(payload) - known
        if extra:
            raise ScenarioError(f"scenario has unknown fields: {sorted(extra)}")
        kwargs = dict(payload)
        kwargs["faults"] = FaultSchedule.from_dicts(kwargs.get("faults", []))
        kwargs["recovering"] = tuple(kwargs.get("recovering", ()))
        return Scenario(**kwargs)

    @staticmethod
    def from_json(text: str) -> "Scenario":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ScenarioError(f"scenario is not valid JSON: {error}") from None
        return Scenario.from_dict(payload)
