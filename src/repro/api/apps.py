"""The application registry: demo apps addressable by name.

A :class:`~repro.api.scenario.Scenario` names its application as a
string, so scenarios stay pure data and suite files can reference any
registered workload.  Each registry entry bundles

* a **builder** — ``builder(cluster, **params)`` registers the app's
  processes on a cluster;
* **defaults** — the parameter values a scenario's ``params`` override;
* **checks** — named global-consistency predicates over the final
  ``{pid: state}`` map (``"default"`` is what a scenario asserts unless
  it picks another by name); and
* **exports** — the app's public classes and helpers for callers that
  need more than a named build (patch generation, replay factories,
  expected-output oracles) without importing ``repro.apps`` internals.

The six demo applications (plus the heavy-traffic word-count burst
profile) are registered at import time; :func:`register_app` adds more.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Tuple

from repro.errors import ScenarioError, UnknownAppError

States = Dict[str, Dict[str, Any]]
Check = Callable[[States], bool]
Builder = Callable[..., None]


@dataclass(frozen=True)
class AppSpec:
    """One registered application."""

    name: str
    builder: Builder
    defaults: Mapping[str, Any] = field(default_factory=dict)
    checks: Mapping[str, Check] = field(default_factory=dict)
    exports: Mapping[str, Any] = field(default_factory=dict)
    description: str = ""

    def check(self, name: str = "default") -> Check:
        try:
            return self.checks[name]
        except KeyError:
            raise ScenarioError(
                f"app {self.name!r} has no consistency check {name!r}; "
                f"known checks: {sorted(self.checks)}"
            ) from None


_REGISTRY: Dict[str, AppSpec] = {}


def register_app(
    name: str,
    builder: Builder,
    *,
    defaults: Mapping[str, Any] | None = None,
    checks: Mapping[str, Check] | None = None,
    exports: Mapping[str, Any] | None = None,
    description: str = "",
    replace: bool = False,
) -> AppSpec:
    """Register an application under ``name``; fails on silent re-registration."""
    if name in _REGISTRY and not replace:
        raise ScenarioError(
            f"app {name!r} is already registered; pass replace=True to override"
        )
    checks = dict(checks or {})
    if "default" not in checks:
        raise ScenarioError(f"app {name!r} needs a 'default' consistency check")
    spec = AppSpec(
        name=name,
        builder=builder,
        defaults=dict(defaults or {}),
        checks=checks,
        exports=dict(exports or {}),
        description=description,
    )
    _REGISTRY[name] = spec
    return spec


def app(name: str) -> AppSpec:
    """Look up a registered application, failing loudly on unknown names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownAppError(name, app_names()) from None


def app_names() -> List[str]:
    return sorted(_REGISTRY)


def build(cluster, name: str, **params) -> AppSpec:
    """Build app ``name`` onto ``cluster``, merging ``params`` over its defaults."""
    spec = app(name)
    unknown = set(params) - set(spec.defaults)
    if unknown:
        raise ScenarioError(
            f"app {name!r} does not accept parameter(s) {sorted(unknown)}; "
            f"known parameters: {sorted(spec.defaults)}"
        )
    spec.builder(cluster, **{**spec.defaults, **params})
    return spec


# ----------------------------------------------------------------------
# canonical global-consistency checks (previously scattered through the
# fault-matrix test; these are the facade-level ground truth)
# ----------------------------------------------------------------------
def wordcount_consistent(states: States) -> bool:
    """Aggregation never outruns dispatch or the corpus."""
    master = states["master"]
    return (
        master["aggregated"] <= master["dispatched"]
        and sum(master["counts"].values()) <= master["corpus_size"]
    )


def bank_locally_consistent(states: States) -> bool:
    """Every branch's books are locally sane (no negative balances/in-flight)."""
    return all(
        all(balance >= 0 for balance in state["accounts"].values())
        and state["in_flight_debits"] >= 0
        for state in states.values()
    )


def token_ring_consistent(states: States) -> bool:
    """At most one token holder and at most one critical section."""
    from repro.apps.token_ring import mutual_exclusion_invariant, single_token_invariant

    return single_token_invariant(states) and mutual_exclusion_invariant(states)


def _register_builtin_apps() -> None:
    from repro.apps.bank import (
        INITIAL_BALANCE,
        BankBranch,
        BankBranchFixed,
        build_bank_cluster,
        total_balance,
        total_balance_invariant,
    )
    from repro.apps.kvstore import (
        KVClient,
        KVReplica,
        KVReplicaStale,
        KVRewritingClient,
        build_kvstore_cluster,
        replica_consistency_invariant,
    )
    from repro.apps.leader_election import (
        RingElector,
        at_most_one_leader_invariant,
        build_election_ring,
    )
    from repro.apps.token_ring import (
        TokenRingNode,
        TokenRingNodeBuggy,
        build_token_ring,
        mutual_exclusion_invariant,
        single_token_invariant,
    )
    from repro.apps.two_phase_commit import (
        Coordinator,
        Participant,
        ParticipantLossy,
        atomicity_invariant,
        build_2pc_cluster,
    )
    from repro.apps.wordcount import (
        WordCountBurstMaster,
        WordCountMaster,
        WordCountWorker,
        build_wordcount_burst_cluster,
        build_wordcount_cluster,
        expected_counts,
    )

    def bank_crash_consistent(states: States) -> bool:
        """Conservation under crashes: nothing invented, every gap in flight.

        A branch that crashes after a peer credited its transfer never
        sees the acknowledgement, so exact ``total + in_flight ==
        expected`` overcounts that transfer forever.  The defensible
        claim is one-sided: balances never exceed the initial supply,
        and whatever is missing from balances is fully covered by
        tracked in-flight debits.
        """
        expected = sum(len(state["accounts"]) * INITIAL_BALANCE for state in states.values())
        total = sum(sum(state["accounts"].values()) for state in states.values())
        in_flight = sum(state["in_flight_debits"] for state in states.values())
        return bank_locally_consistent(states) and total <= expected <= total + in_flight

    register_app(
        "kvstore",
        build_kvstore_cluster,
        defaults={"replicas": 3, "clients": 1, "stale_backups": False, "rewriting_clients": False},
        checks={"default": replica_consistency_invariant},
        exports={
            "KVReplica": KVReplica,
            "KVReplicaStale": KVReplicaStale,
            "KVClient": KVClient,
            "KVRewritingClient": KVRewritingClient,
            "replica_consistency_invariant": replica_consistency_invariant,
        },
        description="primary/backup replicated key-value store",
    )
    register_app(
        "bank",
        build_bank_cluster,
        defaults={"branches": 3, "fixed": False},
        checks={
            "default": bank_locally_consistent,
            "local": bank_locally_consistent,
            "conservation": total_balance_invariant,
            "conservation-bound": bank_crash_consistent,
        },
        exports={
            "BankBranch": BankBranch,
            "BankBranchFixed": BankBranchFixed,
            "total_balance": total_balance,
            "total_balance_invariant": total_balance_invariant,
        },
        description="distributed bank whose transfers conserve the total balance",
    )

    def build_token_ring_app(cluster, nodes: int, max_rounds: int, buggy: bool) -> None:
        build_token_ring(
            cluster,
            nodes=nodes,
            node_class=TokenRingNodeBuggy if buggy else TokenRingNode,
            max_rounds=max_rounds,
        )

    register_app(
        "token_ring",
        build_token_ring_app,
        defaults={"nodes": 3, "max_rounds": 5, "buggy": False},
        checks={
            "default": token_ring_consistent,
            "single-token": single_token_invariant,
            "mutual-exclusion": mutual_exclusion_invariant,
        },
        exports={
            "TokenRingNode": TokenRingNode,
            "TokenRingNodeBuggy": TokenRingNodeBuggy,
            "single_token_invariant": single_token_invariant,
            "mutual_exclusion_invariant": mutual_exclusion_invariant,
        },
        description="token-ring mutual exclusion",
    )
    register_app(
        "leader_election",
        build_election_ring,
        defaults={"nodes": 4},
        checks={"default": at_most_one_leader_invariant},
        exports={
            "RingElector": RingElector,
            "at_most_one_leader_invariant": at_most_one_leader_invariant,
        },
        description="Chang-Roberts ring leader election",
    )
    register_app(
        "two_phase_commit",
        build_2pc_cluster,
        defaults={"participants": 3, "transactions": 2},
        checks={"default": atomicity_invariant},
        exports={
            "Coordinator": Coordinator,
            "Participant": Participant,
            "ParticipantLossy": ParticipantLossy,
            "atomicity_invariant": atomicity_invariant,
        },
        description="transaction coordinator + participants with atomic outcomes",
    )
    register_app(
        "wordcount",
        build_wordcount_cluster,
        defaults={"workers": 3, "chunks": 12},
        checks={"default": wordcount_consistent},
        exports={
            "WordCountMaster": WordCountMaster,
            "WordCountWorker": WordCountWorker,
            "expected_counts": expected_counts,
        },
        description="master/worker word-count pipeline",
    )
    register_app(
        "wordcount_burst",
        build_wordcount_burst_cluster,
        defaults={"workers": 4, "chunks": 200, "words_per_chunk": 12},
        checks={"default": wordcount_consistent},
        exports={
            "WordCountBurstMaster": WordCountBurstMaster,
            "WordCountWorker": WordCountWorker,
            "expected_counts": expected_counts,
        },
        description="burst-dispatching word count (heavy-traffic profile)",
    )


_register_builtin_apps()
