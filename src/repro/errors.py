"""Exception hierarchy shared by every repro subpackage.

Keeping the hierarchy in one module lets callers catch a single base
class (:class:`ReproError`) while still being able to distinguish the
failure domains the paper talks about: simulation problems, invariant
violations detected at runtime, checkpoint/rollback failures, model
checking limits, and unsafe dynamic updates.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class SimulationError(ReproError):
    """The simulator was asked to do something inconsistent.

    Examples: sending to an unknown process, scheduling an event in the
    past, running a cluster that was never built.
    """


class UnknownProcessError(SimulationError):
    """A message or fault referenced a process id that does not exist."""

    def __init__(self, pid: str) -> None:
        super().__init__(f"unknown process id: {pid!r}")
        self.pid = pid


class InvariantViolation(ReproError):
    """A runtime invariant declared by an application process failed.

    This is the ``fault'' of the paper's Section 3: detection of an
    invariant violation is what triggers the Time Machine rollback and
    the Investigator run.
    """

    def __init__(self, name: str, pid: str | None = None, detail: str = "") -> None:
        message = f"invariant {name!r} violated"
        if pid is not None:
            message += f" at process {pid!r}"
        if detail:
            message += f": {detail}"
        super().__init__(message)
        self.name = name
        self.pid = pid
        self.detail = detail


class AttachmentError(ReproError):
    """A FixD controller was attached to a cluster more than once.

    Re-attaching would install the Scroll recorder and fault detector
    hooks a second time and duplicate the fault responders, silently
    double-recording every action and double-handling every fault — so
    the second ``attach`` fails loudly instead.
    """


class FacadeError(ReproError):
    """Misuse of the declarative :mod:`repro.api` facade."""


class UnknownAppError(FacadeError):
    """A scenario referenced an application name missing from the registry."""

    def __init__(self, name: str, known: "list[str]") -> None:
        super().__init__(
            f"unknown application {name!r}; registered apps: {', '.join(known) or '(none)'}"
        )
        self.name = name
        self.known = list(known)


class ScenarioError(FacadeError):
    """A scenario or fault schedule specification is invalid."""


class ScenarioExecutionError(FacadeError):
    """A scenario raised while executing; carries *which* scenario died.

    Raised by the :class:`~repro.api.experiment.Experiment` fan-out
    paths so a failure inside a process-pool worker surfaces with the
    originating grid cell's name instead of a bare traceback.  The
    original error travels as text (``detail``) because arbitrary
    exception objects may not pickle back across the pool boundary.
    """

    def __init__(self, scenario_name: str, detail: str) -> None:
        super().__init__(f"scenario {scenario_name!r} raised during execution: {detail}")
        self.scenario_name = scenario_name
        self.detail = detail

    def __reduce__(self):
        # Exception subclasses with a multi-argument __init__ need an
        # explicit recipe to survive pickling across the pool boundary.
        return (type(self), (self.scenario_name, self.detail))


class CheckpointError(ReproError):
    """Checkpoint creation, lookup or restoration failed."""


class RecoveryLineError(CheckpointError):
    """No globally consistent recovery line could be constructed."""


class BlobIntegrityError(CheckpointError):
    """A durable blob's bytes do not hash to its content address."""


class SpeculationError(ReproError):
    """Misuse of the speculation API (commit/abort without begin, etc.)."""


class ReplayDivergenceError(ReproError):
    """A replayed execution diverged from the recorded Scroll.

    Raised when the replayer observes an action that does not match the
    next recorded entry — the analogue of liblog detecting that replay
    left the recorded path.
    """

    def __init__(self, pid: str, expected: object, actual: object) -> None:
        super().__init__(
            f"replay diverged at process {pid!r}: expected {expected!r}, observed {actual!r}"
        )
        self.pid = pid
        self.expected = expected
        self.actual = actual


class ModelCheckingError(ReproError):
    """The model checking engine was configured or driven incorrectly."""


class StateSpaceLimitExceeded(ModelCheckingError):
    """Exploration hit the configured state or memory budget.

    The paper (Section 2.1) points out that exhaustive exploration of a
    distributed system becomes infeasible beyond a handful of processes;
    this error is how the engine reports hitting that wall instead of
    exhausting host memory.
    """

    def __init__(self, limit: int, kind: str = "states") -> None:
        super().__init__(f"state space exploration exceeded the budget of {limit} {kind}")
        self.limit = limit
        self.kind = kind


class UpdateSafetyError(ReproError):
    """A dynamic software update could not be proven safe to apply."""


class PatchApplicationError(ReproError):
    """Applying a patch to a running process failed."""
