"""repro — a reproduction of FixD (Ţăpuş & Noblet, IPPS 2007).

FixD is a hybrid framework for fault detection, bug reporting, and
recoverability of distributed applications.  It is built from four
cooperating components:

* :mod:`repro.scroll` — the **Scroll**: records every nondeterministic
  action of every process (message receipt, clock reads, random draws,
  injected channel faults) so that an execution can be replayed or
  investigated offline.
* :mod:`repro.timemachine` — the **Time Machine**: lightweight
  copy-on-write checkpoints, distributed speculations,
  communication-induced checkpointing and safe global recovery lines, so
  the system can be rolled back to a consistent state that predates an
  invariant violation.
* :mod:`repro.investigator` — the **Investigator**: an
  implementation-level model checker (ModelD) that explores execution
  paths from a restored global checkpoint and returns the trails that
  lead to invariant violations.
* :mod:`repro.healer` — the **Healer**: dynamic software update and
  recovery strategies (restart-from-scratch vs. resume-from-checkpoint
  with an in-place patch).

Everything runs against :mod:`repro.dsim`, a deterministic discrete-event
simulator of a message-passing cluster (with an optional
``multiprocessing`` backend), and :mod:`repro.apps` provides realistic
distributed applications (replicated KV store, two-phase commit, token
ring, leader election, distributed bank) used by the examples, tests and
benchmarks.

The top-level orchestration — detect a fault, roll back, collect peer
checkpoints and models, investigate, report, heal — lives in
:mod:`repro.core` and is exposed through :class:`repro.core.fixd.FixD`.
"""

from repro.core.fixd import FixD, FixDConfig, FixDReport
from repro.dsim.cluster import Cluster, ClusterConfig
from repro.dsim.process import Process, handler
from repro.investigator.investigator import Investigator
from repro.healer.healer import Healer
from repro.scroll.scroll import Scroll
from repro.timemachine.time_machine import TimeMachine

__all__ = [
    "FixD",
    "FixDConfig",
    "FixDReport",
    "Cluster",
    "ClusterConfig",
    "Process",
    "handler",
    "Investigator",
    "Healer",
    "Scroll",
    "TimeMachine",
]

__version__ = "0.1.0"
