"""The Time Machine facade: checkpoint policy + recovery lines + rollback.

This is the component FixD's orchestration talks to.  It bundles

* a checkpoint *policy* hook (communication-induced, periodic, or
  coordinated snapshots on demand),
* the shared :class:`~repro.timemachine.checkpoint.CheckpointStore` and
  optional :class:`~repro.timemachine.cow.CowPageStore`,
* the :class:`~repro.timemachine.speculation.SpeculationManager`, and
* a :class:`~repro.timemachine.rollback.RollbackManager`

behind a small API: ``attach(cluster)``, ``rollback_to_consistent_state()``
and ``stats()``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Optional

from repro.dsim.hooks import RuntimeHook
from repro.errors import CheckpointError
from repro.timemachine.blobstore import DurableCheckpointStore
from repro.timemachine.flush_pipeline import DEFAULT_FLUSH_QUEUE_BYTES
from repro.timemachine.checkpoint import CheckpointStore, GlobalCheckpoint
from repro.timemachine.comm_induced import (
    CommunicationInducedCheckpointing,
    PeriodicCheckpointing,
)
from repro.timemachine.coordinated import CoordinatedSnapshotter
from repro.timemachine.cow import (
    DEFAULT_CHUNK_ELEMS,
    DEFAULT_CHUNK_THRESHOLD,
    CowPageStore,
)
from repro.timemachine.recovery_line import RecoveryLine, compute_recovery_line
from repro.timemachine.rollback import RollbackManager, RollbackResult
from repro.timemachine.speculation import SpeculationManager


class CheckpointPolicy(Enum):
    """Which checkpointing scheme the Time Machine runs."""

    COMMUNICATION_INDUCED = "communication-induced"
    PERIODIC = "periodic"
    COORDINATED = "coordinated"


@dataclass
class TimeMachineConfig:
    """Configuration of the Time Machine facade."""

    policy: CheckpointPolicy = CheckpointPolicy.COMMUNICATION_INDUCED
    periodic_interval: int = 10
    use_cow_store: bool = True
    cow_page_size: int = 1024
    checkpoint_capacity_per_process: Optional[int] = None
    #: containers with at least this many elements capture per chunk
    #: (None disables delta chunking entirely)
    chunk_threshold: Optional[int] = DEFAULT_CHUNK_THRESHOLD
    #: target element count per chunk / hash bucket
    chunk_elems: int = DEFAULT_CHUNK_ELEMS
    #: "memory" keeps checkpoints in-process; "disk" also flushes every
    #: committed recovery line to a durable content-addressed blob store
    checkpoint_store: str = "memory"
    #: root directory of the durable store (required for "disk")
    store_path: Optional[str] = None
    #: durable manifests are written under runs/<run_id>/
    run_id: str = "run"
    #: keep only the newest N committed lines on disk (None keeps all)
    durable_keep_lines: Optional[int] = None
    #: "sync" flushes committed lines inline; "pipelined" moves blob IO
    #: and fsyncs to a bounded background writer (drained at rollback,
    #: rotation, run end and stats reads)
    flush_mode: str = "sync"
    #: pipelined mode: queue bound in payload bytes before commits block
    flush_queue_bytes: int = DEFAULT_FLUSH_QUEUE_BYTES


class _DurableDrainHook(RuntimeHook):
    """Run-end pipeline barrier for pipelined durable stores.

    Draining at run end means an in-process caller reading the store
    right after ``cluster.run`` sees every commit durable, and a
    continuation started from the same process never races the previous
    run's queued writes.
    """

    def __init__(self, durable) -> None:
        self._durable = durable

    def on_run_end(self, time: float) -> None:
        self._durable.drain()


class TimeMachine:
    """FixD's rollback component."""

    def __init__(self, config: Optional[TimeMachineConfig] = None) -> None:
        self.config = config or TimeMachineConfig()
        if self.config.checkpoint_store not in ("memory", "disk"):
            raise CheckpointError(
                f"unknown checkpoint_store {self.config.checkpoint_store!r} "
                "(expected 'memory' or 'disk')"
            )
        self.store = CheckpointStore(self.config.checkpoint_capacity_per_process)
        self.cow_store = (
            CowPageStore(
                self.config.cow_page_size,
                chunk_threshold=self.config.chunk_threshold,
                chunk_elems=self.config.chunk_elems,
            )
            if self.config.use_cow_store
            else None
        )
        self.durable_store: Optional[DurableCheckpointStore] = None
        if self.config.checkpoint_store == "disk":
            if not self.config.store_path:
                raise CheckpointError(
                    "checkpoint_store='disk' requires an explicit store_path "
                    "(no implicit default directory)"
                )
            self.durable_store = DurableCheckpointStore(
                self.config.store_path,
                run_id=self.config.run_id,
                chunk_threshold=self.config.chunk_threshold,
                chunk_elems=self.config.chunk_elems,
                keep_lines=self.config.durable_keep_lines,
                flush_mode=self.config.flush_mode,
                flush_queue_bytes=self.config.flush_queue_bytes,
            )
        self.speculations = SpeculationManager(self.store, self.cow_store)
        self._cluster = None
        self._rollback_manager: Optional[RollbackManager] = None
        self._policy_hook = None
        self._snapshotter: Optional[CoordinatedSnapshotter] = None

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach(self, cluster) -> None:
        """Install the checkpoint policy and speculation manager on a cluster."""
        self._cluster = cluster
        # the COW chunk caches can feed the durable flush (zero-re-pickle
        # commits) only when both stores cut identical chunk layouts —
        # always true through this config, but guarded for direct users
        cow_for_flush = None
        if (
            self.cow_store is not None
            and self.durable_store is not None
            and self.cow_store.chunk_threshold == self.durable_store.chunk_threshold
            and self.cow_store.chunk_elems == self.durable_store.chunk_elems
            and self.cow_store.order_elems == self.durable_store.order_elems
        ):
            cow_for_flush = self.cow_store
        self._rollback_manager = RollbackManager(
            cluster, durable=self.durable_store, cow=cow_for_flush
        )
        if self.durable_store is not None and self.durable_store.pipeline is not None:
            cluster.add_hook(_DurableDrainHook(self.durable_store))
        if self.config.policy is CheckpointPolicy.COMMUNICATION_INDUCED:
            self._policy_hook = CommunicationInducedCheckpointing(self.store, self.cow_store)
            cluster.add_hook(self._policy_hook)
        elif self.config.policy is CheckpointPolicy.PERIODIC:
            self._policy_hook = PeriodicCheckpointing(
                self.config.periodic_interval, self.store, self.cow_store
            )
            cluster.add_hook(self._policy_hook)
        else:
            self._snapshotter = CoordinatedSnapshotter(self.store)
        cluster.add_hook(self.speculations)

    @property
    def cluster(self):
        if self._cluster is None:
            raise CheckpointError("TimeMachine is not attached to a cluster")
        return self._cluster

    @property
    def rollback_manager(self) -> RollbackManager:
        if self._rollback_manager is None:
            raise CheckpointError("TimeMachine is not attached to a cluster")
        return self._rollback_manager

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def snapshot_now(self, label: str = "manual") -> GlobalCheckpoint:
        """Take an immediate coordinated snapshot (regardless of policy)."""
        if self._snapshotter is None:
            self._snapshotter = CoordinatedSnapshotter(self.store)
        return self._snapshotter.take_snapshot(self.cluster, label).global_checkpoint

    def checkpoint_process(self, pid: str) -> None:
        """Force a local checkpoint of one process right now."""
        process = self.cluster.process(pid)
        checkpoint = process.capture_checkpoint(self.cluster.now)
        self.store.add(checkpoint)
        if self.cow_store is not None:
            self.cow_store.capture(
                pid, process.state, self.cluster.now, sequence=checkpoint.sequence
            )

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def latest_recovery_line(
        self, not_after: Optional[Dict[str, float]] = None
    ) -> RecoveryLine:
        """Compute the most recent consistent recovery line from stored checkpoints."""
        return compute_recovery_line(self.store, not_after=not_after)

    def rollback_to_consistent_state(
        self, not_after: Optional[Dict[str, float]] = None, truncate_scroll: bool = False
    ) -> RollbackResult:
        """Compute a safe recovery line and apply it to the cluster."""
        line = self.latest_recovery_line(not_after=not_after)
        return self.rollback_manager.rollback(line, truncate_scroll=truncate_scroll)

    def rollback_to(self, line: RecoveryLine, truncate_scroll: bool = False) -> RollbackResult:
        """Apply a pre-computed recovery line.

        ``truncate_scroll`` additionally cuts the cluster's registered
        Scroll (hot tier and spilled segments alike) back to the log
        position stamped on the line's checkpoints.
        """
        return self.rollback_manager.rollback(line, truncate_scroll=truncate_scroll)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Checkpoint, storage and speculation statistics for reports."""
        stats: Dict[str, object] = {
            "policy": self.config.policy.value,
            "checkpoints": self.store.total_checkpoints(),
            "checkpoint_bytes_full": self.store.total_bytes(),
            "rollbacks": self._rollback_manager.rollbacks_performed if self._rollback_manager else 0,
            "speculations": self.speculations.stats(),
        }
        if self.cow_store is not None:
            stats["cow_stored_bytes"] = self.cow_store.stored_bytes()
            stats["cow_logical_bytes"] = self.cow_store.logical_bytes()
            stats["cow_savings_ratio"] = self.cow_store.savings_ratio()
            # dirty-tracking effectiveness: how much capture work the
            # per-key cache avoided across the run
            stats["cow_hashed_bytes"] = self.cow_store.hashed_bytes_total
            stats["cow_serialized_bytes"] = self.cow_store.serialized_bytes_total
        if self.durable_store is not None:
            stats["durable"] = self.durable_store.stats()
        return stats
