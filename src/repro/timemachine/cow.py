"""Copy-on-write incremental checkpoints with delta-chunked containers.

Section 4.2 gives two reasons the paper prefers speculations over
traditional checkpointing, the first being that "speculations use a
copy-on-write mechanism to build lightweight, incremental checkpoints of
processes".  This module reproduces that mechanism at the level of
*state pages*: each top-level key of a process's state dictionary is
serialized independently, split into fixed-size pages, and pages are
content-addressed (BLAKE2b-128 of their bytes); an incremental
checkpoint stores only the pages of keys mutated since the previous
checkpoint plus references to unchanged pages.

Large containers are additionally serialized *per chunk* so the cost of
a capture scales with the element-level delta instead of the key size:

* **lists** above ``chunk_threshold`` elements are cut into fixed
  element-count chunks (``chunk_elems`` per chunk) — mutating one
  element dirties one chunk, appending dirties only the tail;
* **dicts** are split into hash-bucketed key groups (a stable CRC of
  each key picks its bucket) so inserting, deleting or rewriting one
  entry dirties one bucket regardless of where the key sits; the
  insertion order of the whole dict rides along as a separately chunked
  key-order vector, so a restore rebuilds the dictionary byte-identical
  to the original, and pure value mutations never touch the order
  chunks;
* **sets** of scalars are hash-bucketed the same way, with a canonical
  in-bucket order so identical contents always produce identical chunk
  bytes.

Each chunk is independently pickled, content-addressed and cached; a
1-element write into a 100k-entry dict re-pickles and re-hashes one
bucket (a few elements), not the whole key.

The dirty-chunk part of the copy-on-write idea lives in a per-process
cache: for every key (and every chunk of a chunked key) the store
remembers the bytes and page hashes of the version it captured last.
At the next capture a key or chunk is *clean* — its cached pages are
referenced without any pickling or hashing — when its value is a
trusted scalar (immutable scalars, plus tuples and frozensets built
from them) that compares bit-identical to the cached one; a mutable
value is re-serialized, but if the bytes come out unchanged the cached
page hashes are reused without re-hashing a single page.  Only
genuinely dirty chunks pay for hashing and page storage.

Hashing: the capture hot path uses ``hashlib.blake2b(digest_size=16)``
(fast, keyed-capable, 128-bit addresses); SHA-256 is reserved for the
durable blob store (:mod:`repro.timemachine.blobstore`), where the hash
doubles as an on-disk integrity check of content-addressed files.

Garbage collection is incremental: every page carries a reference count
(one per checkpoint that references it), so dropping old checkpoints
releases exactly their newly unreferenced pages in time proportional to
the dropped checkpoints — not to the whole store.

The claim-4.2-cow benchmark compares the bytes written per checkpoint by
this store against full deep-copy checkpoints across mutation ratios;
``benchmarks/run_bench.py``'s ``measure_chunked_cow`` tracks pickled and
hashed bytes per capture against whole-key re-serialization.
"""

from __future__ import annotations

import hashlib
import pickle
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import CheckpointError

DEFAULT_PAGE_SIZE = 1024

#: Containers with at least this many elements are serialized per chunk.
DEFAULT_CHUNK_THRESHOLD = 256

#: Target element count per chunk / hash bucket of a chunked container.
DEFAULT_CHUNK_ELEMS = 32

#: Value types whose equality is a safe substitute for byte-identical
#: pickles (exact type match required — a bool is not an int here, and a
#: str subclass may pickle extra state).  Tuples and frozensets built
#: from these are trusted too, via :func:`_trusted_scalar`'s recursion.
_SCALAR_TYPES = (str, bytes, int, float, bool, type(None))

#: Sentinel stored in the key cache for values we never trust by equality.
_OPAQUE = object()

#: Cache slot for states captured as one whole-dict blob (aliased states).
_WHOLE_STATE = object()

_MISSING = object()


def _serialize_state(state: Dict[str, Any]) -> bytes:
    """Stable serialization of a whole state dictionary (full-copy baseline)."""
    try:
        return pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:  # unpicklable application state is a hard error
        raise CheckpointError(f"process state is not serializable: {exc}") from exc


def _serialize_value(key: str, value: Any) -> bytes:
    """Stable serialization of one state value (or one chunk of it)."""
    try:
        return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise CheckpointError(
            f"process state key {key!r} is not serializable: {exc}"
        ) from exc


def _paginate(blob: bytes, page_size: int) -> List[bytes]:
    """Split a byte string into fixed-size pages (the last one may be short)."""
    return [blob[offset : offset + page_size] for offset in range(0, len(blob), page_size)] or [b""]


def _page_hash(page: bytes) -> str:
    # BLAKE2b-128 on the hot path: measurably faster than SHA-1 per byte
    # and 128 bits is plenty for an in-memory content address.  Durable
    # blob names use SHA-256 (see repro.timemachine.blobstore).
    return hashlib.blake2b(page, digest_size=16).hexdigest()


def _trusted_scalar(value: Any) -> bool:
    """True when ``value`` can be declared clean by comparison alone.

    Immutable scalars qualify, and so do tuples and frozensets whose
    elements (recursively) qualify — they cannot be mutated in place, so
    bit-exact equality with the cached version proves the pickle would
    come out identical.
    """
    kind = type(value)
    if kind in _SCALAR_TYPES:
        return True
    if kind is tuple or kind is frozenset:
        return all(_trusted_scalar(item) for item in value)
    return False


def _has_top_level_aliasing(state: Dict[str, Any]) -> bool:
    """True when two top-level values are the same object (or the state itself).

    Trusted scalars are exempt: they are immutable, so restoring
    independent copies is indistinguishable from restoring the shared
    object.
    """
    seen: set = set()
    for value in state.values():
        if _trusted_scalar(value):
            continue
        if value is state:
            return True
        marker = id(value)
        if marker in seen:
            return True
        seen.add(marker)
    return False


def _scalars_equal(cached: Any, value: Any) -> bool:
    """Bit-exact equality for trusted scalars (so 1 != True, 0.0 != -0.0)."""
    if cached is value:
        return True
    if type(cached) is not type(value):
        return False
    if isinstance(cached, float):
        # == would conflate 0.0/-0.0 and reject NaN==NaN; compare the bits.
        return struct.pack("<d", cached) == struct.pack("<d", value)
    if isinstance(cached, tuple):
        return len(cached) == len(value) and all(
            _scalars_equal(a, b) for a, b in zip(cached, value)
        )
    if isinstance(cached, frozenset):
        if len(cached) != len(value):
            return False
        # Equal-but-not-bit-identical members (0.0 vs -0.0) hash alike,
        # so an equality lookup finds the candidate and the recursive
        # bit-exact check rejects impostors.
        lookup = {member: member for member in cached}
        for member in value:
            match = lookup.get(member, _MISSING)
            if match is _MISSING or not _scalars_equal(match, member):
                return False
        return True
    return cached == value


# ----------------------------------------------------------------------
# the chunk codec: pure functions shared with the durable blob store
# ----------------------------------------------------------------------
def _pow2_buckets(elements: int, chunk_elems: int) -> int:
    """Bucket count for ``elements`` items: the next power of two of the
    needed chunk count, so the layout is a pure function of the size and
    only reshuffles when the container roughly doubles or halves."""
    needed = max(1, -(-elements // chunk_elems))
    count = 1
    while count < needed:
        count <<= 1
    return count


def _bucket_index(item: Any, buckets: int) -> int:
    """Stable bucket assignment via a CRC of the item's repr.

    ``repr`` of trusted scalars is deterministic across processes
    (except frozensets under hash randomization, which only costs
    cross-process dedup, never correctness), and CRC32 is cheap enough
    to run per element per capture without registering in the
    pickled/hashed byte accounting.
    """
    return zlib.crc32(repr(item).encode("utf-8", "backslashreplace")) % buckets


def _canonical_sort_key(item: Any) -> Tuple[str, str]:
    return (type(item).__name__, repr(item))


def chunk_kind(
    value: Any, chunk_threshold: Optional[int]
) -> Optional[str]:
    """Which chunked layout ``value`` gets, or ``None`` for whole-value capture.

    Dicts chunk only when every key is a trusted scalar (bucket
    assignment needs a stable repr); sets only when every element is.
    """
    if chunk_threshold is None:
        return None
    kind = type(value)
    if kind is list and len(value) >= chunk_threshold:
        return "list"
    if kind is dict and len(value) >= chunk_threshold:
        if all(_trusted_scalar(key) for key in value):
            return "dict"
        return None
    if kind is set and len(value) >= chunk_threshold:
        if all(_trusted_scalar(item) for item in value):
            return "set"
        return None
    return None


def chunk_items(
    kind: str, value: Any, chunk_elems: int, order_elems: int
) -> Tuple[List[list], List[list]]:
    """Split ``value`` into (value chunks, order chunks) of plain lists.

    The returned chunk lists are what gets pickled — one blob per chunk
    — and the layout is a pure function of the content, so the in-memory
    page store and the durable blob store produce identical chunk bytes
    for identical values (that purity is what makes cross-checkpoint and
    cross-run dedup work).
    """
    if kind == "list":
        chunks = [
            value[offset : offset + chunk_elems]
            for offset in range(0, len(value), chunk_elems)
        ] or [[]]
        return chunks, []
    if kind == "dict":
        buckets_count = _pow2_buckets(len(value), chunk_elems)
        buckets: List[list] = [[] for _ in range(buckets_count)]
        for key, item in value.items():
            buckets[_bucket_index(key, buckets_count)].append((key, item))
        keys = list(value.keys())
        order = [
            keys[offset : offset + order_elems]
            for offset in range(0, len(keys), order_elems)
        ] or [[]]
        return buckets, order
    if kind == "set":
        buckets_count = _pow2_buckets(len(value), chunk_elems)
        buckets = [[] for _ in range(buckets_count)]
        for item in value:
            buckets[_bucket_index(item, buckets_count)].append(item)
        for bucket in buckets:
            bucket.sort(key=_canonical_sort_key)
        return buckets, []
    raise CheckpointError(f"unknown chunk kind {kind!r}")


def assemble_chunked(kind: str, chunks: List[Any], order_keys: List[Any]) -> Any:
    """Rebuild a container from its unpickled chunks (inverse of chunk_items)."""
    if kind == "list":
        rebuilt: list = []
        for chunk in chunks:
            rebuilt.extend(chunk)
        return rebuilt
    if kind == "set":
        rebuilt_set: set = set()
        for chunk in chunks:
            rebuilt_set.update(chunk)
        return rebuilt_set
    if kind == "dict":
        combined: dict = {}
        for chunk in chunks:
            for key, item in chunk:
                combined[key] = item
        try:
            return {key: combined[key] for key in order_keys}
        except KeyError as exc:
            raise CheckpointError(
                f"chunked dict is missing key {exc.args[0]!r} named by its order vector"
            ) from None
    raise CheckpointError(f"unknown chunk kind {kind!r}")


@dataclass
class _CachedKey:
    """The last captured version of one state key (or one chunk of one)."""

    value: Any               # the trusted-scalar value, or _OPAQUE for mutable types
    blob: bytes              # serialized bytes of the captured version
    hashes: List[str]        # page hashes of ``blob``
    #: SHA-256 blob-store address of ``blob``, learned lazily the first
    #: time the durable store flushes this chunk.  ``blob`` is immutable,
    #: so a learned address stays valid for the life of the entry; the
    #: store still re-checks existence on disk (ABA after rotation).
    address: Optional[str] = None


@dataclass
class _CachedChunked:
    """The last captured version of one chunked container key."""

    kind: str                      # "list" | "dict" | "set"
    chunks: List[_CachedKey]       # value chunks / hash buckets
    order: List[_CachedKey]        # dict only: chunked key-order vector


@dataclass
class KeyLayout:
    """How one state key's pages decompose into chunks inside a checkpoint."""

    kind: str                      # "whole" | "list" | "dict" | "set"
    chunks: List[List[str]]        # per-chunk page-hash lists
    order: List[List[str]] = field(default_factory=list)  # dict key-order chunks

    def all_hashes(self) -> List[str]:
        return [digest for hashes in self.chunks for digest in hashes] + [
            digest for hashes in self.order for digest in hashes
        ]


@dataclass
class CowCheckpoint:
    """An incremental checkpoint: page hashes per state key plus metadata.

    The actual page bytes live in the :class:`CowPageStore`; a checkpoint
    only references them, which is what makes checkpoints after small
    mutations cheap.
    """

    pid: str
    sequence: int
    time: float
    page_hashes: List[str]
    total_bytes: int
    new_bytes: int
    new_pages: int
    extra: Dict[str, Any] = field(default_factory=dict)
    #: page hashes grouped per state key in the state's iteration order;
    #: ``None`` only for legacy whole-blob checkpoints.
    key_pages: Optional[Dict[str, List[str]]] = None
    #: bytes actually hashed while capturing this checkpoint (dirty chunks only)
    hashed_bytes: int = 0
    #: bytes actually pickled while capturing this checkpoint
    serialized_bytes: int = 0
    #: chunk decomposition per state key; ``None`` for whole-blob checkpoints.
    key_layouts: Optional[Dict[str, KeyLayout]] = None
    #: the capture's cached chunk entries per state key — the exact
    #: pickled bytes (and, once learned, durable addresses) this
    #: checkpoint's pages were derived from.  Entries are shared with
    #: neighbouring checkpoints when clean, so holding them costs what
    #: the page store already pays; ``None`` for whole-blob checkpoints.
    chunk_cache: Optional[Dict[Any, Union["_CachedKey", "_CachedChunked"]]] = None

    @property
    def pages(self) -> int:
        return len(self.page_hashes)

    @property
    def sharing_ratio(self) -> float:
        """Fraction of this checkpoint's bytes shared with earlier checkpoints."""
        if self.total_bytes == 0:
            return 1.0
        return 1.0 - (self.new_bytes / self.total_bytes)


class CowPageStore:
    """A content-addressed page store with per-process checkpoint chains.

    Pages are reference-counted: each checkpoint referencing a page holds
    one reference per occurrence, so garbage collection after
    :meth:`drop_before` releases pages incrementally instead of
    re-deriving the full reachable set.

    ``chunk_threshold``/``chunk_elems`` control the delta-chunked
    container layout (:func:`chunk_items`); ``chunk_threshold=None``
    disables chunking entirely and restores the whole-key-per-blob
    behaviour (used as the oracle in equivalence tests and benchmarks).
    """

    def __init__(
        self,
        page_size: int = DEFAULT_PAGE_SIZE,
        chunk_threshold: Optional[int] = DEFAULT_CHUNK_THRESHOLD,
        chunk_elems: int = DEFAULT_CHUNK_ELEMS,
        order_elems: Optional[int] = None,
    ) -> None:
        if page_size <= 0:
            raise ValueError("page_size must be positive")
        if chunk_threshold is not None and chunk_threshold <= 0:
            raise ValueError("chunk_threshold must be positive (or None to disable)")
        if chunk_elems <= 0:
            raise ValueError("chunk_elems must be positive")
        self.page_size = page_size
        self.chunk_threshold = chunk_threshold
        self.chunk_elems = chunk_elems
        # key-order vectors hold small scalars, so they pack denser
        self.order_elems = order_elems if order_elems is not None else chunk_elems * 8
        self._pages: Dict[str, bytes] = {}
        self._page_refs: Dict[str, int] = {}
        self._checkpoints: Dict[str, List[CowCheckpoint]] = {}
        self._sequence: Dict[str, int] = {}
        #: pid -> key -> last captured version (the dirty-tracking cache)
        self._key_cache: Dict[str, Dict[Any, Union[_CachedKey, _CachedChunked]]] = {}
        #: lifetime counters for the capture hot path
        self.hashed_bytes_total = 0
        self.serialized_bytes_total = 0
        self.chunks_captured_total = 0
        self.chunks_clean_total = 0

    # ------------------------------------------------------------------
    # capture
    # ------------------------------------------------------------------
    def capture(self, pid: str, state: Dict[str, Any], time: float, **extra: Any) -> CowCheckpoint:
        """Capture an incremental checkpoint of ``state`` for ``pid``.

        Only keys (and, within chunked containers, chunks) mutated since
        the previous capture of ``pid`` are pickled and hashed; clean
        keys re-reference their cached pages.

        States whose top-level mutable values alias each other (or the
        state dict itself) are captured as a single whole-dict blob so
        :meth:`restore` preserves the identity sharing; per-key capture
        would restore independent copies.  Aliasing nested deeper than
        one level (e.g. two keys whose *elements* are shared) is not
        detected and restores as copies.
        """
        if _has_top_level_aliasing(state):
            return self._capture_whole(pid, state, time, extra)
        cache = self._key_cache.get(pid, {})
        next_cache: Dict[Any, Union[_CachedKey, _CachedChunked]] = {}
        key_layouts: Dict[str, KeyLayout] = {}
        total_bytes = 0
        new_bytes = 0
        new_pages = 0
        self._cap_hashed = 0
        self._cap_serialized = 0

        for key, value in state.items():
            cached = cache.get(key)
            kind = chunk_kind(value, self.chunk_threshold)
            if kind is None:
                plain = cached if isinstance(cached, _CachedKey) else None
                entry = self._capture_plain(plain, key, value)
                next_cache[key] = entry
                key_layouts[key] = KeyLayout(kind="whole", chunks=[entry.hashes])
                total_bytes += len(entry.blob)
                new_bytes, new_pages = self._reference_pages(entry, new_bytes, new_pages)
            else:
                chunked = (
                    cached
                    if isinstance(cached, _CachedChunked) and cached.kind == kind
                    else None
                )
                entry = self._capture_chunked(chunked, key, kind, value)
                next_cache[key] = entry
                key_layouts[key] = KeyLayout(
                    kind=kind,
                    chunks=[chunk.hashes for chunk in entry.chunks],
                    order=[chunk.hashes for chunk in entry.order],
                )
                for chunk in entry.chunks:
                    total_bytes += len(chunk.blob)
                    new_bytes, new_pages = self._reference_pages(chunk, new_bytes, new_pages)
                for chunk in entry.order:
                    total_bytes += len(chunk.blob)
                    new_bytes, new_pages = self._reference_pages(chunk, new_bytes, new_pages)

        key_pages = {key: layout.all_hashes() for key, layout in key_layouts.items()}
        self._key_cache[pid] = next_cache
        self.hashed_bytes_total += self._cap_hashed
        self.serialized_bytes_total += self._cap_serialized
        self._sequence[pid] = self._sequence.get(pid, 0) + 1
        checkpoint = CowCheckpoint(
            pid=pid,
            sequence=self._sequence[pid],
            time=time,
            page_hashes=[digest for hashes in key_pages.values() for digest in hashes],
            total_bytes=total_bytes,
            new_bytes=new_bytes,
            new_pages=new_pages,
            extra=dict(extra),
            key_pages=key_pages,
            hashed_bytes=self._cap_hashed,
            serialized_bytes=self._cap_serialized,
            key_layouts=key_layouts,
            chunk_cache=next_cache,
        )
        self._checkpoints.setdefault(pid, []).append(checkpoint)
        return checkpoint

    def _capture_plain(
        self, cached: Optional[_CachedKey], key: Any, value: Any
    ) -> _CachedKey:
        """Dirty tracking for one unchunked value: scalar compare, then byte compare."""
        if cached is not None and cached.value is not _OPAQUE and _scalars_equal(cached.value, value):
            return cached  # clean scalar: no pickling, no hashing
        blob = _serialize_value(key, value)
        self._cap_serialized += len(blob)
        if cached is not None and blob == cached.blob:
            return cached  # unchanged bytes: reuse hashes, skip hashing
        hashes: List[str] = []
        for page in _paginate(blob, self.page_size):
            self._cap_hashed += len(page)
            hashes.append(_page_hash(page))
        return _CachedKey(
            value=value if _trusted_scalar(value) else _OPAQUE,
            blob=blob,
            hashes=hashes,
        )

    def _capture_chunk(
        self, cached: Optional[_CachedKey], key: Any, items: list
    ) -> _CachedKey:
        """Dirty tracking for one chunk: its item tuple plays the scalar role."""
        self.chunks_captured_total += 1
        items_t = tuple(items)
        if (
            cached is not None
            and cached.value is not _OPAQUE
            and _scalars_equal(cached.value, items_t)
        ):
            self.chunks_clean_total += 1
            return cached  # clean chunk: no pickling, no hashing
        blob = _serialize_value(key, items)
        self._cap_serialized += len(blob)
        if cached is not None and blob == cached.blob:
            return cached
        hashes: List[str] = []
        for page in _paginate(blob, self.page_size):
            self._cap_hashed += len(page)
            hashes.append(_page_hash(page))
        return _CachedKey(
            value=items_t if _trusted_scalar(items_t) else _OPAQUE,
            blob=blob,
            hashes=hashes,
        )

    def _capture_chunked(
        self, cached: Optional[_CachedChunked], key: Any, kind: str, value: Any
    ) -> _CachedChunked:
        """Capture a chunked container against its cached chunk versions.

        Chunk layouts are pure functions of the content, so cached chunk
        ``i`` is compared against current chunk ``i``; when the chunk
        count changed (the container roughly doubled) the misaligned
        chunks simply come out dirty.
        """
        value_chunks, order_chunks = chunk_items(kind, value, self.chunk_elems, self.order_elems)
        prior_chunks = cached.chunks if cached is not None else []
        prior_order = cached.order if cached is not None else []
        chunks = [
            self._capture_chunk(
                prior_chunks[index] if index < len(prior_chunks) else None, key, items
            )
            for index, items in enumerate(value_chunks)
        ]
        order = [
            self._capture_chunk(
                prior_order[index] if index < len(prior_order) else None, key, items
            )
            for index, items in enumerate(order_chunks)
        ]
        return _CachedChunked(kind=kind, chunks=chunks, order=order)

    def _capture_whole(self, pid: str, state: Dict[str, Any], time: float, extra: Dict[str, Any]) -> CowCheckpoint:
        """Whole-dict capture for aliased states (legacy layout, key_pages=None).

        Dirty tracking still applies at the whole-state granularity: if
        the serialized bytes match the previous whole-state capture, the
        cached page hashes are reused without re-hashing.
        """
        cache = self._key_cache.get(pid, {})
        cached = cache.get(_WHOLE_STATE)
        blob = _serialize_state(state)
        serialized_bytes = len(blob)
        hashed_bytes = 0
        if isinstance(cached, _CachedKey) and blob == cached.blob:
            entry = cached
        else:
            hashes: List[str] = []
            for page in _paginate(blob, self.page_size):
                hashed_bytes += len(page)
                hashes.append(_page_hash(page))
            entry = _CachedKey(value=_OPAQUE, blob=blob, hashes=hashes)
        self._key_cache[pid] = {_WHOLE_STATE: entry}
        self.hashed_bytes_total += hashed_bytes
        self.serialized_bytes_total += serialized_bytes
        new_bytes, new_pages = self._reference_pages(entry, 0, 0)
        self._sequence[pid] = self._sequence.get(pid, 0) + 1
        checkpoint = CowCheckpoint(
            pid=pid,
            sequence=self._sequence[pid],
            time=time,
            page_hashes=list(entry.hashes),
            total_bytes=len(blob),
            new_bytes=new_bytes,
            new_pages=new_pages,
            extra=dict(extra),
            key_pages=None,
            hashed_bytes=hashed_bytes,
            serialized_bytes=serialized_bytes,
            key_layouts=None,
        )
        self._checkpoints.setdefault(pid, []).append(checkpoint)
        return checkpoint

    def _reference_pages(self, entry: _CachedKey, new_bytes: int, new_pages: int) -> tuple:
        """Add one reference per page of ``entry``, materializing missing pages.

        A clean key's pages may have been garbage-collected since they
        were cached (the chain that referenced them was dropped); they
        are re-derived from the cached bytes rather than treated as a
        cache hit on missing data.
        """
        pages_by_hash = None
        for digest in entry.hashes:
            if digest not in self._pages:
                if pages_by_hash is None:
                    pages_by_hash = {
                        _page_hash(page): page for page in _paginate(entry.blob, self.page_size)
                    }
                page = pages_by_hash[digest]
                self._pages[digest] = page
                new_bytes += len(page)
                new_pages += 1
            self._page_refs[digest] = self._page_refs.get(digest, 0) + 1
        return new_bytes, new_pages

    # ------------------------------------------------------------------
    # restore
    # ------------------------------------------------------------------
    def restore(self, checkpoint: CowCheckpoint) -> Dict[str, Any]:
        """Reconstruct the state dictionary referenced by ``checkpoint``."""
        if checkpoint.key_pages is None:
            blob = self._join_pages(checkpoint, checkpoint.page_hashes)
            return pickle.loads(blob)
        state: Dict[str, Any] = {}
        layouts = checkpoint.key_layouts or {
            key: KeyLayout(kind="whole", chunks=[hashes])
            for key, hashes in checkpoint.key_pages.items()
        }
        for key, layout in layouts.items():
            if layout.kind == "whole":
                state[key] = pickle.loads(self._join_pages(checkpoint, layout.chunks[0]))
                continue
            chunks = [
                pickle.loads(self._join_pages(checkpoint, hashes)) for hashes in layout.chunks
            ]
            order_keys: List[Any] = []
            for hashes in layout.order:
                order_keys.extend(pickle.loads(self._join_pages(checkpoint, hashes)))
            state[key] = assemble_chunked(layout.kind, chunks, order_keys)
        return state

    def _join_pages(self, checkpoint: CowCheckpoint, hashes: List[str]) -> bytes:
        try:
            return b"".join(self._pages[digest] for digest in hashes)
        except KeyError as exc:
            raise CheckpointError(
                f"page {exc.args[0]!r} referenced by checkpoint {checkpoint.sequence} "
                f"of {checkpoint.pid!r} is missing from the store"
            ) from None

    def latest(self, pid: str) -> Optional[CowCheckpoint]:
        chain = self._checkpoints.get(pid)
        return chain[-1] if chain else None

    def chain(self, pid: str) -> List[CowCheckpoint]:
        """All incremental checkpoints of ``pid`` in capture order."""
        return list(self._checkpoints.get(pid, ()))

    def chunk_sources(
        self, pid: str, sequence: Any
    ) -> Optional[Dict[Any, Union[_CachedKey, _CachedChunked]]]:
        """The cached chunk entries of the capture stamped ``sequence``.

        ``sequence`` is the *process-checkpoint* sequence the policy
        recorded in the capture's ``extra`` (not the COW store's own
        counter).  This is what the durable store consumes to flush a
        committed line without re-pickling: each entry holds the exact
        bytes the capture serialized, plus the durable address once the
        store has learned it.  Returns ``None`` when no matching capture
        is held (dropped, whole-blob, or never routed through this
        store) — the durable flush then falls back to re-chunking.
        """
        if sequence is None:
            return None
        for checkpoint in reversed(self._checkpoints.get(pid, ())):
            if checkpoint.extra.get("sequence") == sequence:
                return checkpoint.chunk_cache
        return None

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def stored_bytes(self) -> int:
        """Total unique page bytes held by the store."""
        return sum(len(page) for page in self._pages.values())

    def stored_pages(self) -> int:
        return len(self._pages)

    def logical_bytes(self) -> int:
        """Sum of the full sizes of every checkpoint (what full copies would cost)."""
        return sum(
            checkpoint.total_bytes
            for chain in self._checkpoints.values()
            for checkpoint in chain
        )

    def savings_ratio(self) -> float:
        """1 - stored/logical: how much the COW store saved versus full copies."""
        logical = self.logical_bytes()
        if logical == 0:
            return 0.0
        return 1.0 - (self.stored_bytes() / logical)

    # ------------------------------------------------------------------
    # garbage collection
    # ------------------------------------------------------------------
    def drop_before(self, pid: str, sequence: int) -> int:
        """Forget checkpoints of ``pid`` older than ``sequence``; returns pages freed.

        Reference counts make this incremental: only the dropped
        checkpoints' own references are released, so the cost is
        proportional to what was dropped rather than to the whole store.
        """
        chain = self._checkpoints.get(pid, [])
        dropped = [c for c in chain if c.sequence < sequence]
        self._checkpoints[pid] = [c for c in chain if c.sequence >= sequence]
        freed = 0
        for checkpoint in dropped:
            freed += self._release_pages(checkpoint.page_hashes)
        return freed

    def drop_checkpoint(self, pid: str, sequence: int) -> int:
        """Forget exactly one checkpoint of ``pid``; returns pages freed.

        Releases only that checkpoint's references, leaving every other
        checkpoint of the chain (e.g. periodic or communication-induced
        ones interleaved with it) restorable.  Dropping an unknown
        sequence is a no-op.
        """
        chain = self._checkpoints.get(pid, [])
        for index, checkpoint in enumerate(chain):
            if checkpoint.sequence == sequence:
                del chain[index]
                return self._release_pages(checkpoint.page_hashes)
        return 0

    def _release_pages(self, hashes: List[str]) -> int:
        """Drop one reference per page hash; free pages that hit zero."""
        freed = 0
        for digest in hashes:
            remaining = self._page_refs.get(digest, 0) - 1
            if remaining > 0:
                self._page_refs[digest] = remaining
            else:
                self._page_refs.pop(digest, None)
                if self._pages.pop(digest, None) is not None:
                    freed += 1
        return freed


def full_checkpoint_bytes(state: Dict[str, Any]) -> int:
    """Cost of a traditional full checkpoint of ``state`` (for comparisons)."""
    return len(_serialize_state(state))
