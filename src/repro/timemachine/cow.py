"""Copy-on-write incremental checkpoints.

Section 4.2 gives two reasons the paper prefers speculations over
traditional checkpointing, the first being that "speculations use a
copy-on-write mechanism to build lightweight, incremental checkpoints of
processes".  This module reproduces that mechanism at the level of
*state pages*: each top-level key of a process's state dictionary is
serialized independently, split into fixed-size pages, and pages are
content-addressed (SHA-1 of their bytes); an incremental checkpoint
stores only the pages of keys mutated since the previous checkpoint plus
references to unchanged pages.

The dirty-page part of the copy-on-write idea lives in a per-process
key cache: for every key the store remembers the bytes and page hashes
of the version it captured last.  At the next capture a key is *clean* —
its cached pages are referenced without any pickling or hashing — when
its value is an immutable scalar that compares bit-identical to the
cached one; a key holding a mutable value is re-serialized, but if the
bytes come out unchanged the cached page hashes are reused without
re-hashing a single page.  Only genuinely dirty keys pay for hashing and
page storage, so a checkpoint after a 1% mutation hashes about 1% of
the state instead of all of it.

Garbage collection is incremental: every page carries a reference count
(one per checkpoint that references it), so dropping old checkpoints
releases exactly their newly unreferenced pages in time proportional to
the dropped checkpoints — not to the whole store.

The claim-4.2-cow benchmark compares the bytes written per checkpoint by
this store against full deep-copy checkpoints across mutation ratios;
``benchmarks/test_perf_hotpaths.py`` additionally tracks bytes hashed
per capture against the always-rehash baseline.
"""

from __future__ import annotations

import hashlib
import pickle
import struct
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import CheckpointError

DEFAULT_PAGE_SIZE = 1024

#: Value types whose equality is a safe substitute for byte-identical
#: pickles (exact type match required — a bool is not an int here, and a
#: str subclass may pickle extra state).
_SCALAR_TYPES = (str, bytes, int, float, bool, type(None))

#: Sentinel stored in the key cache for values we never trust by equality.
_OPAQUE = object()

#: Cache slot for states captured as one whole-dict blob (aliased states).
_WHOLE_STATE = object()


def _serialize_state(state: Dict[str, Any]) -> bytes:
    """Stable serialization of a whole state dictionary (full-copy baseline)."""
    try:
        return pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:  # unpicklable application state is a hard error
        raise CheckpointError(f"process state is not serializable: {exc}") from exc


def _serialize_value(key: str, value: Any) -> bytes:
    """Stable serialization of one state value."""
    try:
        return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise CheckpointError(
            f"process state key {key!r} is not serializable: {exc}"
        ) from exc


def _paginate(blob: bytes, page_size: int) -> List[bytes]:
    """Split a byte string into fixed-size pages (the last one may be short)."""
    return [blob[offset : offset + page_size] for offset in range(0, len(blob), page_size)] or [b""]


def _page_hash(page: bytes) -> str:
    return hashlib.sha1(page).hexdigest()


def _trusted_scalar(value: Any) -> bool:
    """True when ``value`` can be declared clean by comparison alone."""
    return type(value) in _SCALAR_TYPES


def _has_top_level_aliasing(state: Dict[str, Any]) -> bool:
    """True when two top-level values are the same object (or the state itself)."""
    seen: set = set()
    for value in state.values():
        if _trusted_scalar(value):
            continue
        if value is state:
            return True
        marker = id(value)
        if marker in seen:
            return True
        seen.add(marker)
    return False


def _scalars_equal(cached: Any, value: Any) -> bool:
    """Bit-exact equality for trusted scalars (so 1 != True, 0.0 != -0.0)."""
    if type(cached) is not type(value):
        return False
    if isinstance(cached, float):
        # == would conflate 0.0/-0.0 and reject NaN==NaN; compare the bits.
        return struct.pack("<d", cached) == struct.pack("<d", value)
    return cached == value


@dataclass
class _CachedKey:
    """The last captured version of one state key of one process."""

    value: Any               # the scalar value, or _OPAQUE for mutable types
    blob: bytes              # serialized bytes of the captured version
    hashes: List[str]        # page hashes of ``blob``


@dataclass
class CowCheckpoint:
    """An incremental checkpoint: page hashes per state key plus metadata.

    The actual page bytes live in the :class:`CowPageStore`; a checkpoint
    only references them, which is what makes checkpoints after small
    mutations cheap.
    """

    pid: str
    sequence: int
    time: float
    page_hashes: List[str]
    total_bytes: int
    new_bytes: int
    new_pages: int
    extra: Dict[str, Any] = field(default_factory=dict)
    #: page hashes grouped per state key in the state's iteration order;
    #: ``None`` only for legacy whole-blob checkpoints.
    key_pages: Optional[Dict[str, List[str]]] = None
    #: bytes actually SHA-1'd while capturing this checkpoint (dirty keys only)
    hashed_bytes: int = 0
    #: bytes actually pickled while capturing this checkpoint
    serialized_bytes: int = 0

    @property
    def pages(self) -> int:
        return len(self.page_hashes)

    @property
    def sharing_ratio(self) -> float:
        """Fraction of this checkpoint's bytes shared with earlier checkpoints."""
        if self.total_bytes == 0:
            return 1.0
        return 1.0 - (self.new_bytes / self.total_bytes)


class CowPageStore:
    """A content-addressed page store with per-process checkpoint chains.

    Pages are reference-counted: each checkpoint referencing a page holds
    one reference per occurrence, so garbage collection after
    :meth:`drop_before` releases pages incrementally instead of
    re-deriving the full reachable set.
    """

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        if page_size <= 0:
            raise ValueError("page_size must be positive")
        self.page_size = page_size
        self._pages: Dict[str, bytes] = {}
        self._page_refs: Dict[str, int] = {}
        self._checkpoints: Dict[str, List[CowCheckpoint]] = {}
        self._sequence: Dict[str, int] = {}
        #: pid -> key -> last captured version (the dirty-tracking cache)
        self._key_cache: Dict[str, Dict[str, _CachedKey]] = {}
        #: lifetime counters for the capture hot path
        self.hashed_bytes_total = 0
        self.serialized_bytes_total = 0

    # ------------------------------------------------------------------
    # capture
    # ------------------------------------------------------------------
    def capture(self, pid: str, state: Dict[str, Any], time: float, **extra: Any) -> CowCheckpoint:
        """Capture an incremental checkpoint of ``state`` for ``pid``.

        Only keys mutated since the previous capture of ``pid`` are
        pickled and hashed; clean keys re-reference their cached pages.

        States whose top-level values alias each other (or the state
        dict itself) are captured as a single whole-dict blob so
        :meth:`restore` preserves the identity sharing; per-key capture
        would restore independent copies.  Aliasing nested deeper than
        one level (e.g. two keys whose *elements* are shared) is not
        detected and restores as copies.
        """
        if _has_top_level_aliasing(state):
            return self._capture_whole(pid, state, time, extra)
        cache = self._key_cache.get(pid, {})
        next_cache: Dict[str, _CachedKey] = {}
        key_pages: Dict[str, List[str]] = {}
        total_bytes = 0
        new_bytes = 0
        new_pages = 0
        hashed_bytes = 0
        serialized_bytes = 0

        for key, value in state.items():
            cached = cache.get(key)
            entry: Optional[_CachedKey] = None
            if cached is not None and cached.value is not _OPAQUE and _scalars_equal(cached.value, value):
                entry = cached  # clean scalar: no pickling, no hashing
            else:
                blob = _serialize_value(key, value)
                serialized_bytes += len(blob)
                if cached is not None and blob == cached.blob:
                    entry = cached  # unchanged bytes: reuse hashes, skip hashing
                else:
                    hashes: List[str] = []
                    for page in _paginate(blob, self.page_size):
                        hashed_bytes += len(page)
                        hashes.append(_page_hash(page))
                    entry = _CachedKey(
                        value=value if _trusted_scalar(value) else _OPAQUE,
                        blob=blob,
                        hashes=hashes,
                    )
            next_cache[key] = entry
            key_pages[key] = entry.hashes
            total_bytes += len(entry.blob)
            new_bytes, new_pages = self._reference_pages(entry, new_bytes, new_pages)

        self._key_cache[pid] = next_cache
        self.hashed_bytes_total += hashed_bytes
        self.serialized_bytes_total += serialized_bytes
        self._sequence[pid] = self._sequence.get(pid, 0) + 1
        checkpoint = CowCheckpoint(
            pid=pid,
            sequence=self._sequence[pid],
            time=time,
            page_hashes=[digest for hashes in key_pages.values() for digest in hashes],
            total_bytes=total_bytes,
            new_bytes=new_bytes,
            new_pages=new_pages,
            extra=dict(extra),
            key_pages=key_pages,
            hashed_bytes=hashed_bytes,
            serialized_bytes=serialized_bytes,
        )
        self._checkpoints.setdefault(pid, []).append(checkpoint)
        return checkpoint

    def _capture_whole(self, pid: str, state: Dict[str, Any], time: float, extra: Dict[str, Any]) -> CowCheckpoint:
        """Whole-dict capture for aliased states (legacy layout, key_pages=None).

        Dirty tracking still applies at the whole-state granularity: if
        the serialized bytes match the previous whole-state capture, the
        cached page hashes are reused without re-hashing.
        """
        cache = self._key_cache.get(pid, {})
        cached = cache.get(_WHOLE_STATE)
        blob = _serialize_state(state)
        serialized_bytes = len(blob)
        hashed_bytes = 0
        if cached is not None and blob == cached.blob:
            entry = cached
        else:
            hashes: List[str] = []
            for page in _paginate(blob, self.page_size):
                hashed_bytes += len(page)
                hashes.append(_page_hash(page))
            entry = _CachedKey(value=_OPAQUE, blob=blob, hashes=hashes)
        self._key_cache[pid] = {_WHOLE_STATE: entry}
        self.hashed_bytes_total += hashed_bytes
        self.serialized_bytes_total += serialized_bytes
        new_bytes, new_pages = self._reference_pages(entry, 0, 0)
        self._sequence[pid] = self._sequence.get(pid, 0) + 1
        checkpoint = CowCheckpoint(
            pid=pid,
            sequence=self._sequence[pid],
            time=time,
            page_hashes=list(entry.hashes),
            total_bytes=len(blob),
            new_bytes=new_bytes,
            new_pages=new_pages,
            extra=dict(extra),
            key_pages=None,
            hashed_bytes=hashed_bytes,
            serialized_bytes=serialized_bytes,
        )
        self._checkpoints.setdefault(pid, []).append(checkpoint)
        return checkpoint

    def _reference_pages(self, entry: _CachedKey, new_bytes: int, new_pages: int) -> tuple:
        """Add one reference per page of ``entry``, materializing missing pages.

        A clean key's pages may have been garbage-collected since they
        were cached (the chain that referenced them was dropped); they
        are re-derived from the cached bytes rather than treated as a
        cache hit on missing data.
        """
        pages_by_hash = None
        for digest in entry.hashes:
            if digest not in self._pages:
                if pages_by_hash is None:
                    pages_by_hash = {
                        _page_hash(page): page for page in _paginate(entry.blob, self.page_size)
                    }
                page = pages_by_hash[digest]
                self._pages[digest] = page
                new_bytes += len(page)
                new_pages += 1
            self._page_refs[digest] = self._page_refs.get(digest, 0) + 1
        return new_bytes, new_pages

    # ------------------------------------------------------------------
    # restore
    # ------------------------------------------------------------------
    def restore(self, checkpoint: CowCheckpoint) -> Dict[str, Any]:
        """Reconstruct the state dictionary referenced by ``checkpoint``."""
        if checkpoint.key_pages is None:
            blob = self._join_pages(checkpoint, checkpoint.page_hashes)
            return pickle.loads(blob)
        state: Dict[str, Any] = {}
        for key, hashes in checkpoint.key_pages.items():
            state[key] = pickle.loads(self._join_pages(checkpoint, hashes))
        return state

    def _join_pages(self, checkpoint: CowCheckpoint, hashes: List[str]) -> bytes:
        try:
            return b"".join(self._pages[digest] for digest in hashes)
        except KeyError as exc:
            raise CheckpointError(
                f"page {exc.args[0]!r} referenced by checkpoint {checkpoint.sequence} "
                f"of {checkpoint.pid!r} is missing from the store"
            ) from None

    def latest(self, pid: str) -> Optional[CowCheckpoint]:
        chain = self._checkpoints.get(pid)
        return chain[-1] if chain else None

    def chain(self, pid: str) -> List[CowCheckpoint]:
        """All incremental checkpoints of ``pid`` in capture order."""
        return list(self._checkpoints.get(pid, ()))

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def stored_bytes(self) -> int:
        """Total unique page bytes held by the store."""
        return sum(len(page) for page in self._pages.values())

    def stored_pages(self) -> int:
        return len(self._pages)

    def logical_bytes(self) -> int:
        """Sum of the full sizes of every checkpoint (what full copies would cost)."""
        return sum(
            checkpoint.total_bytes
            for chain in self._checkpoints.values()
            for checkpoint in chain
        )

    def savings_ratio(self) -> float:
        """1 - stored/logical: how much the COW store saved versus full copies."""
        logical = self.logical_bytes()
        if logical == 0:
            return 0.0
        return 1.0 - (self.stored_bytes() / logical)

    # ------------------------------------------------------------------
    # garbage collection
    # ------------------------------------------------------------------
    def drop_before(self, pid: str, sequence: int) -> int:
        """Forget checkpoints of ``pid`` older than ``sequence``; returns pages freed.

        Reference counts make this incremental: only the dropped
        checkpoints' own references are released, so the cost is
        proportional to what was dropped rather than to the whole store.
        """
        chain = self._checkpoints.get(pid, [])
        dropped = [c for c in chain if c.sequence < sequence]
        self._checkpoints[pid] = [c for c in chain if c.sequence >= sequence]
        freed = 0
        for checkpoint in dropped:
            freed += self._release_pages(checkpoint.page_hashes)
        return freed

    def drop_checkpoint(self, pid: str, sequence: int) -> int:
        """Forget exactly one checkpoint of ``pid``; returns pages freed.

        Releases only that checkpoint's references, leaving every other
        checkpoint of the chain (e.g. periodic or communication-induced
        ones interleaved with it) restorable.  Dropping an unknown
        sequence is a no-op.
        """
        chain = self._checkpoints.get(pid, [])
        for index, checkpoint in enumerate(chain):
            if checkpoint.sequence == sequence:
                del chain[index]
                return self._release_pages(checkpoint.page_hashes)
        return 0

    def _release_pages(self, hashes: List[str]) -> int:
        """Drop one reference per page hash; free pages that hit zero."""
        freed = 0
        for digest in hashes:
            remaining = self._page_refs.get(digest, 0) - 1
            if remaining > 0:
                self._page_refs[digest] = remaining
            else:
                self._page_refs.pop(digest, None)
                if self._pages.pop(digest, None) is not None:
                    freed += 1
        return freed


def full_checkpoint_bytes(state: Dict[str, Any]) -> int:
    """Cost of a traditional full checkpoint of ``state`` (for comparisons)."""
    return len(_serialize_state(state))
