"""Copy-on-write incremental checkpoints.

Section 4.2 gives two reasons the paper prefers speculations over
traditional checkpointing, the first being that "speculations use a
copy-on-write mechanism to build lightweight, incremental checkpoints of
processes".  This module reproduces that mechanism at the level of
*state pages*: a process's state dictionary is serialized into fixed-size
pages, pages are content-addressed (SHA-1 of their bytes), and an
incremental checkpoint stores only the pages that changed since the
previous checkpoint plus references to unchanged pages.

The claim-4.2-cow benchmark compares the bytes written per checkpoint by
this store against full deep-copy checkpoints across mutation ratios.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import CheckpointError

DEFAULT_PAGE_SIZE = 1024


def _serialize_state(state: Dict[str, Any]) -> bytes:
    """Stable serialization of a state dictionary."""
    try:
        return pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:  # unpicklable application state is a hard error
        raise CheckpointError(f"process state is not serializable: {exc}") from exc


def _paginate(blob: bytes, page_size: int) -> List[bytes]:
    """Split a byte string into fixed-size pages (the last one may be short)."""
    return [blob[offset : offset + page_size] for offset in range(0, len(blob), page_size)] or [b""]


def _page_hash(page: bytes) -> str:
    return hashlib.sha1(page).hexdigest()


@dataclass
class CowCheckpoint:
    """An incremental checkpoint: a list of page hashes plus metadata.

    The actual page bytes live in the :class:`CowPageStore`; a checkpoint
    only references them, which is what makes checkpoints after small
    mutations cheap.
    """

    pid: str
    sequence: int
    time: float
    page_hashes: List[str]
    total_bytes: int
    new_bytes: int
    new_pages: int
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def pages(self) -> int:
        return len(self.page_hashes)

    @property
    def sharing_ratio(self) -> float:
        """Fraction of this checkpoint's bytes shared with earlier checkpoints."""
        if self.total_bytes == 0:
            return 1.0
        return 1.0 - (self.new_bytes / self.total_bytes)


class CowPageStore:
    """A content-addressed page store with per-process checkpoint chains."""

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        if page_size <= 0:
            raise ValueError("page_size must be positive")
        self.page_size = page_size
        self._pages: Dict[str, bytes] = {}
        self._checkpoints: Dict[str, List[CowCheckpoint]] = {}
        self._sequence: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # capture
    # ------------------------------------------------------------------
    def capture(self, pid: str, state: Dict[str, Any], time: float, **extra: Any) -> CowCheckpoint:
        """Capture an incremental checkpoint of ``state`` for ``pid``."""
        blob = _serialize_state(state)
        pages = _paginate(blob, self.page_size)
        hashes: List[str] = []
        new_bytes = 0
        new_pages = 0
        for page in pages:
            digest = _page_hash(page)
            hashes.append(digest)
            if digest not in self._pages:
                self._pages[digest] = page
                new_bytes += len(page)
                new_pages += 1
        self._sequence[pid] = self._sequence.get(pid, 0) + 1
        checkpoint = CowCheckpoint(
            pid=pid,
            sequence=self._sequence[pid],
            time=time,
            page_hashes=hashes,
            total_bytes=len(blob),
            new_bytes=new_bytes,
            new_pages=new_pages,
            extra=dict(extra),
        )
        self._checkpoints.setdefault(pid, []).append(checkpoint)
        return checkpoint

    # ------------------------------------------------------------------
    # restore
    # ------------------------------------------------------------------
    def restore(self, checkpoint: CowCheckpoint) -> Dict[str, Any]:
        """Reconstruct the state dictionary referenced by ``checkpoint``."""
        try:
            blob = b"".join(self._pages[digest] for digest in checkpoint.page_hashes)
        except KeyError as exc:
            raise CheckpointError(
                f"page {exc.args[0]!r} referenced by checkpoint {checkpoint.sequence} "
                f"of {checkpoint.pid!r} is missing from the store"
            ) from None
        return pickle.loads(blob)

    def latest(self, pid: str) -> Optional[CowCheckpoint]:
        chain = self._checkpoints.get(pid)
        return chain[-1] if chain else None

    def chain(self, pid: str) -> List[CowCheckpoint]:
        """All incremental checkpoints of ``pid`` in capture order."""
        return list(self._checkpoints.get(pid, ()))

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def stored_bytes(self) -> int:
        """Total unique page bytes held by the store."""
        return sum(len(page) for page in self._pages.values())

    def stored_pages(self) -> int:
        return len(self._pages)

    def logical_bytes(self) -> int:
        """Sum of the full sizes of every checkpoint (what full copies would cost)."""
        return sum(
            checkpoint.total_bytes
            for chain in self._checkpoints.values()
            for checkpoint in chain
        )

    def savings_ratio(self) -> float:
        """1 - stored/logical: how much the COW store saved versus full copies."""
        logical = self.logical_bytes()
        if logical == 0:
            return 0.0
        return 1.0 - (self.stored_bytes() / logical)

    # ------------------------------------------------------------------
    # garbage collection
    # ------------------------------------------------------------------
    def drop_before(self, pid: str, sequence: int) -> int:
        """Forget checkpoints of ``pid`` older than ``sequence``; returns pages freed."""
        chain = self._checkpoints.get(pid, [])
        keep = [c for c in chain if c.sequence >= sequence]
        self._checkpoints[pid] = keep
        return self._collect_garbage()

    def _collect_garbage(self) -> int:
        """Drop pages no longer referenced by any checkpoint."""
        referenced = {
            digest
            for chain in self._checkpoints.values()
            for checkpoint in chain
            for digest in checkpoint.page_hashes
        }
        unreferenced = [digest for digest in self._pages if digest not in referenced]
        for digest in unreferenced:
            del self._pages[digest]
        return len(unreferenced)


def full_checkpoint_bytes(state: Dict[str, Any]) -> int:
    """Cost of a traditional full checkpoint of ``state`` (for comparisons)."""
    return len(_serialize_state(state))
