"""Coordinated snapshots: the traditional checkpoint-and-rollback baseline.

The paper contrasts speculations with "traditional checkpoint and
rollback mechanisms".  The traditional coordinated approach is a global
snapshot protocol in the style of Chandy–Lamport: all processes agree to
cut the execution at one point and the channel contents crossing the cut
are recorded too.

In the deterministic simulator a coordinated snapshot can be taken
*between* events, which yields exactly the state a marker-based protocol
would converge to: per-process states at the cut plus the set of messages
sent before the cut but not yet delivered (the channel state).  The
substitution is documented in DESIGN.md; the observable result — a
consistent global checkpoint including in-flight messages — is the same,
and the cost model (every process checkpoints at the same cut, whether or
not it benefits) is what the ablation benchmark measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.dsim.message import Message
from repro.dsim.scheduler import EventKind
from repro.timemachine.checkpoint import CheckpointStore, GlobalCheckpoint
from repro.timemachine.recovery_line import RecoveryLine, is_consistent


@dataclass
class CoordinatedSnapshot:
    """A coordinated global snapshot: process states plus channel contents."""

    global_checkpoint: GlobalCheckpoint
    in_flight: List[Message] = field(default_factory=list)
    time: float = 0.0

    @property
    def consistent(self) -> bool:
        return is_consistent(self.global_checkpoint.checkpoints)

    def in_flight_for(self, dst: str) -> List[Message]:
        return [message for message in self.in_flight if message.dst == dst]


class CoordinatedSnapshotter:
    """Takes coordinated snapshots of a cluster on demand or periodically."""

    def __init__(self, store: Optional[CheckpointStore] = None) -> None:
        self.store = store if store is not None else CheckpointStore()
        self.snapshots: List[CoordinatedSnapshot] = []

    def take_snapshot(self, cluster, label: str = "coordinated") -> CoordinatedSnapshot:
        """Snapshot every live process and the in-flight messages right now."""
        bundle = GlobalCheckpoint(label=label)
        for pid in cluster.pids:
            process = cluster.process(pid)
            if process.crashed:
                continue
            checkpoint = process.capture_checkpoint(cluster.now)
            self.store.add(checkpoint)
            bundle.add(checkpoint)
        in_flight = [event.payload for event in cluster.scheduler.pending(EventKind.DELIVER)]
        snapshot = CoordinatedSnapshot(
            global_checkpoint=bundle, in_flight=list(in_flight), time=cluster.now
        )
        self.snapshots.append(snapshot)
        return snapshot

    def latest(self) -> Optional[CoordinatedSnapshot]:
        return self.snapshots[-1] if self.snapshots else None

    def restore_latest(self, cluster, redeliver_in_flight: bool = True) -> Optional[CoordinatedSnapshot]:
        """Roll the cluster back to the latest snapshot (including channel state)."""
        snapshot = self.latest()
        if snapshot is None:
            return None
        cluster.restore_checkpoints(dict(snapshot.global_checkpoint.checkpoints))
        if redeliver_in_flight:
            for message in snapshot.in_flight:
                cluster.scheduler.schedule(0.0, EventKind.DELIVER, message.dst, message)
        return snapshot

    def as_recovery_line(self) -> Optional[RecoveryLine]:
        """Expose the latest snapshot in recovery-line form (zero rollback steps)."""
        snapshot = self.latest()
        if snapshot is None:
            return None
        return RecoveryLine(
            checkpoints=dict(snapshot.global_checkpoint.checkpoints),
            rolled_back_steps={pid: 0 for pid in snapshot.global_checkpoint.pids()},
            iterations=1,
            domino_effect=False,
            label="coordinated-snapshot",
        )
