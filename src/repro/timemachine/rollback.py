"""The rollback manager: applying recovery lines to a running cluster."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.dsim.process import ProcessCheckpoint
from repro.errors import RecoveryLineError
from repro.timemachine.recovery_line import RecoveryLine, is_consistent


@dataclass
class RollbackResult:
    """What a rollback did, for reports and benchmarks."""

    restored_pids: List[str]
    recovery_line: RecoveryLine
    time_before: float
    rollback_distance: Dict[str, float] = field(default_factory=dict)
    alternate_paths_invoked: int = 0

    @property
    def max_rollback_distance(self) -> float:
        """Largest amount of simulated time any process lost to the rollback."""
        return max(self.rollback_distance.values(), default=0.0)

    @property
    def total_rollback_distance(self) -> float:
        return sum(self.rollback_distance.values())


class RollbackManager:
    """Applies recovery lines to a cluster and optionally re-routes execution.

    The second function of the Time Machine (Section 3.2) is "the ability
    to resume execution from the saved checkpoint on a different branch
    of execution that could bypass the error".  Alternate branches are
    registered per process as callbacks invoked right after the rollback;
    an application typically uses them to flip a mode flag or re-issue a
    request along a different path.
    """

    def __init__(self, cluster) -> None:
        self._cluster = cluster
        self._alternate_paths: Dict[str, Callable[[object], None]] = {}
        self.history: List[RollbackResult] = []

    def register_alternate_path(self, pid: str, callback: Callable[[object], None]) -> None:
        """Register a callback invoked with the process object after it is rolled back."""
        self._alternate_paths[pid] = callback

    def rollback(self, line: RecoveryLine, verify: bool = True) -> RollbackResult:
        """Restore every process named in ``line`` and cancel their in-flight events."""
        if verify and not is_consistent(line.checkpoints):
            raise RecoveryLineError(
                "refusing to roll back to an inconsistent set of checkpoints"
            )
        time_before = self._cluster.now
        distances = {
            pid: max(0.0, time_before - checkpoint.time)
            for pid, checkpoint in line.checkpoints.items()
        }
        self._cluster.restore_checkpoints(dict(line.checkpoints))
        invoked = 0
        for pid in line.checkpoints:
            callback = self._alternate_paths.get(pid)
            if callback is not None:
                callback(self._cluster.process(pid))
                invoked += 1
        result = RollbackResult(
            restored_pids=sorted(line.checkpoints),
            recovery_line=line,
            time_before=time_before,
            rollback_distance=distances,
            alternate_paths_invoked=invoked,
        )
        self.history.append(result)
        return result

    def rollback_single(self, checkpoint: ProcessCheckpoint) -> RollbackResult:
        """Roll back a single process (a degenerate one-process recovery line)."""
        line = RecoveryLine(
            checkpoints={checkpoint.pid: checkpoint},
            rolled_back_steps={checkpoint.pid: 0},
            iterations=1,
            domino_effect=False,
            label=f"single-{checkpoint.pid}",
        )
        return self.rollback(line, verify=False)

    @property
    def rollbacks_performed(self) -> int:
        return len(self.history)
