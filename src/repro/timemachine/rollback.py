"""The rollback manager: applying recovery lines to a running cluster."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.dsim.process import ProcessCheckpoint
from repro.errors import RecoveryLineError
from repro.timemachine.recovery_line import RecoveryLine, is_consistent


@dataclass
class RollbackResult:
    """What a rollback did, for reports and benchmarks."""

    restored_pids: List[str]
    recovery_line: RecoveryLine
    time_before: float
    rollback_distance: Dict[str, float] = field(default_factory=dict)
    alternate_paths_invoked: int = 0
    #: Scroll entries discarded (both tiers) when log truncation was requested.
    scroll_entries_truncated: int = 0

    @property
    def max_rollback_distance(self) -> float:
        """Largest amount of simulated time any process lost to the rollback."""
        return max(self.rollback_distance.values(), default=0.0)

    @property
    def total_rollback_distance(self) -> float:
        return sum(self.rollback_distance.values())


class RollbackManager:
    """Applies recovery lines to a cluster and optionally re-routes execution.

    The second function of the Time Machine (Section 3.2) is "the ability
    to resume execution from the saved checkpoint on a different branch
    of execution that could bypass the error".  Alternate branches are
    registered per process as callbacks invoked right after the rollback;
    an application typically uses them to flip a mode flag or re-issue a
    request along a different path.
    """

    def __init__(self, cluster, durable=None, cow=None) -> None:
        self._cluster = cluster
        self._alternate_paths: Dict[str, Callable[[object], None]] = {}
        self.history: List[RollbackResult] = []
        #: recovery lines the caller promised never to roll back past
        self.committed_lines: List[RecoveryLine] = []
        #: optional DurableCheckpointStore; committed lines flush to it
        self._durable = durable
        #: optional CowPageStore whose per-capture chunk caches feed the
        #: durable flush (zero-re-pickle commits); the caller guarantees
        #: its chunk layout parameters match the durable store's
        self._cow = cow
        #: per-flush counter dicts returned by the durable store
        self.durable_flushes: List[Dict[str, int]] = []
        #: per-flush counter dicts for durable Scroll segments
        self.scroll_flushes: List[Dict[str, int]] = []

    def register_alternate_path(self, pid: str, callback: Callable[[object], None]) -> None:
        """Register a callback invoked with the process object after it is rolled back."""
        self._alternate_paths[pid] = callback

    def rollback(
        self, line: RecoveryLine, verify: bool = True, truncate_scroll: bool = False
    ) -> RollbackResult:
        """Restore every process named in ``line`` and cancel their in-flight events.

        With ``truncate_scroll=True`` the cluster's registered Scroll is
        also cut back to the line's recorded log position (the spill
        watermark + hot length stamped on the member checkpoints), so
        both storage tiers forget the rolled-back future.  Callers that
        still need the post-line log — e.g. to assemble a bug report
        tail — truncate explicitly afterwards instead.
        """
        if verify and not is_consistent(line.checkpoints):
            raise RecoveryLineError(
                "refusing to roll back to an inconsistent set of checkpoints"
            )
        if self._durable is not None:
            # hard pipeline barrier: the commit-ordering check below reasons
            # about the durable frontier, so queued flushes (and any error
            # they hit) must land before state is rewound
            self._durable.drain()
        self._check_not_past_commit(line)
        time_before = self._cluster.now
        distances = {
            pid: max(0.0, time_before - checkpoint.time)
            for pid, checkpoint in line.checkpoints.items()
        }
        self._cluster.restore_checkpoints(dict(line.checkpoints))
        invoked = 0
        for pid in line.checkpoints:
            callback = self._alternate_paths.get(pid)
            if callback is not None:
                callback(self._cluster.process(pid))
                invoked += 1
        truncated = 0
        if truncate_scroll:
            truncated = self.truncate_scroll_to(line)
        result = RollbackResult(
            restored_pids=sorted(line.checkpoints),
            recovery_line=line,
            time_before=time_before,
            rollback_distance=distances,
            alternate_paths_invoked=invoked,
            scroll_entries_truncated=truncated,
        )
        self.history.append(result)
        return result

    def truncate_scroll_to(self, line: RecoveryLine) -> int:
        """Cut the cluster's Scroll back to ``line``'s recorded position.

        The cut is the *earliest* position stamped on the line's
        checkpoints, so the kept prefix is history every member agrees
        happened.  Members checkpointed later than the cut lose the
        window between the cut and their own stamp — including recorded
        nondeterminism their restored state has already consumed — so a
        truncated log explains the post-rollback era *from the recovery
        line's restored states*, not from process genesis.  That is the
        deliberate trade: bounded log growth and a log that never
        describes the rolled-back future, at the cost of
        replay-from-genesis across the cut.  Callers needing a
        genesis-replayable artefact of the pre-rollback run should
        ``save_scroll`` before truncating (FixD captures the bug-report
        tail first for the same reason).

        Returns the number of entries discarded (0 when the cluster has
        no registered Scroll or the line predates Scroll recording).
        """
        scroll = getattr(self._cluster, "scroll", None)
        position = line.scroll_position()
        if scroll is None or position is None:
            return 0
        return scroll.truncate(position)

    def _check_not_past_commit(self, line: RecoveryLine) -> None:
        """Refuse to roll back past a committed recovery line.

        Committing a line garbage-collects the Scroll prefix below its
        recorded position; a rollback to an *earlier* line would restore
        state whose replay window was already unlinked from disk, so the
        promise behind :meth:`commit` must be enforced, not assumed.
        """
        position = line.scroll_position()
        if position is None:
            return
        for committed in self.committed_lines:
            committed_position = committed.scroll_position()
            if committed_position is not None and position < committed_position:
                raise RecoveryLineError(
                    f"recovery line at Scroll position {position} predates the "
                    f"committed line at position {committed_position}; its replay "
                    "window was garbage-collected and the rollback is unsound"
                )

    def commit(self, line: RecoveryLine, collect_scroll: bool = True) -> int:
        """Commit a recovery line: the system will never roll back past it.

        Committing is the garbage-collection trigger of the log-bounding
        story: everything on the Scroll *before* the committed line's
        recorded position is unreachable for any future rollback, so the
        cold-tier segments holding it are unlinked from disk and the
        offset index is re-based
        (:meth:`repro.scroll.scroll.Scroll.collect`).  The line itself
        and everything after it stay fully replayable.  Returns the
        number of Scroll entries collected (0 when the cluster has no
        registered Scroll, the Scroll is untiered, or nothing had
        spilled below the line yet).

        When a durable checkpoint store is attached, the committed line
        is flushed to disk *before* any garbage collection: a commit
        whose flush fails must not have discarded the replay window it
        promised to preserve.  The Scroll window the line makes
        reachable (plus the scheduler's in-flight snapshot) is flushed
        alongside it, which is what lets ``Experiment.resume`` continue
        the run instead of merely restoring quiescent state.

        Commits must advance: a line at or below the current commit
        frontier raises :class:`~repro.errors.RecoveryLineError` *before*
        anything durable is written — flushing an older line as the
        newest manifest would make a later resume restore regressed
        state.
        """
        self._check_commit_advances(line)
        position = line.scroll_position()
        if self._durable is not None:
            chunk_sources = None
            if self._cow is not None:
                chunk_sources = {
                    pid: self._cow.chunk_sources(pid, checkpoint.sequence)
                    for pid, checkpoint in line.checkpoints.items()
                }
            self.durable_flushes.append(
                self._durable.flush_line(line, chunk_sources=chunk_sources)
            )
            self._flush_scroll(committed_position=position)
        self.committed_lines.append(line)
        if not collect_scroll:
            return 0
        scroll = getattr(self._cluster, "scroll", None)
        if scroll is None or position is None:
            return 0
        collector = getattr(scroll, "collect", None)
        return collector(position) if collector is not None else 0

    def _check_commit_advances(self, line: RecoveryLine) -> None:
        """Refuse to commit a line at or below the current commit frontier.

        The newest durable line manifest is what resume restores; the
        hot-side ``committed_lines`` list is what rollback-ordering
        checks consult.  Both assume commits are monotonic in Scroll
        position, so a stale line (auto-committer racing a rollback,
        replayed commit, caller error) must be rejected up front — not
        appended and flushed as if it were the new frontier.
        """
        position = line.scroll_position()
        if position is None:
            return
        for committed in reversed(self.committed_lines):
            committed_position = committed.scroll_position()
            if committed_position is None:
                continue
            if position <= committed_position:
                raise RecoveryLineError(
                    f"cannot commit recovery line at Scroll position {position}: "
                    f"the commit frontier is already at {committed_position} "
                    "(commits must advance)"
                )
            return

    def _flush_scroll(self, committed_position=None) -> None:
        """Flush the registered Scroll's durable tail (no-op without one)."""
        if self._durable is None:
            return
        scroll = getattr(self._cluster, "scroll", None)
        if scroll is None:
            return
        from repro.timemachine.scroll_persistence import capture_pending

        pending = capture_pending(self._cluster.backend)
        self.scroll_flushes.append(
            self._durable.flush_scroll(
                scroll,
                pending=pending,
                now=self._cluster.now,
                committed_position=committed_position,
            )
        )

    def maybe_flush_scroll(self, threshold: int) -> bool:
        """Incrementally flush when ``threshold`` entries await durability.

        Called between commits (e.g. by the periodic committer's
        ``after_handler``) so the durable log trails the hot log by at
        most one window; returns True when a flush happened.
        """
        if self._durable is None or threshold <= 0:
            return False
        scroll = getattr(self._cluster, "scroll", None)
        if scroll is None:
            return False
        if self._durable.scroll_entries_pending(scroll) < threshold:
            return False
        self._flush_scroll()
        return True

    def rollback_single(self, checkpoint: ProcessCheckpoint) -> RollbackResult:
        """Roll back a single process (a degenerate one-process recovery line)."""
        line = RecoveryLine(
            checkpoints={checkpoint.pid: checkpoint},
            rolled_back_steps={checkpoint.pid: 0},
            iterations=1,
            domino_effect=False,
            label=f"single-{checkpoint.pid}",
        )
        return self.rollback(line, verify=False)

    @property
    def rollbacks_performed(self) -> int:
        return len(self.history)
