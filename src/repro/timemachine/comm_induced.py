"""Checkpoint policies: communication-induced and periodic (uncoordinated).

The paper's Figure 6 describes the communication-induced scheme used by
speculations: *each process saves a checkpoint before receiving a new
message*.  Because every receive is preceded by a checkpoint, for any
failure point there is always a consistent recovery line no older than
one message per process — the scheme trades extra (cheap, copy-on-write)
checkpoints for freedom from the domino effect.

:class:`PeriodicCheckpointing` is the classic uncoordinated alternative
(checkpoint every N handled events), which is cheaper per run but allows
arbitrarily long rollback propagation; the ablation benchmark contrasts
the two.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Optional

from repro.dsim.hooks import RuntimeHook
from repro.timemachine.checkpoint import CheckpointStore
from repro.timemachine.cow import CowPageStore


class _CheckpointingHookBase(RuntimeHook):
    """Shared plumbing for checkpoint policies implemented as runtime hooks."""

    def __init__(
        self,
        store: Optional[CheckpointStore] = None,
        cow_store: Optional[CowPageStore] = None,
    ) -> None:
        self.store = store if store is not None else CheckpointStore()
        self.cow_store = cow_store
        self._cluster = None
        self.checkpoints_taken: Dict[str, int] = defaultdict(int)

    def attach(self, cluster) -> None:
        self._cluster = cluster

    def take_checkpoint(self, pid: str, time: float) -> None:
        """Capture a local checkpoint of ``pid`` into the store(s)."""
        if self._cluster is None:
            return
        process = self._cluster.process(pid)
        if process.crashed:
            return
        checkpoint = process.capture_checkpoint(time)
        self.store.add(checkpoint)
        if self.cow_store is not None:
            self.cow_store.capture(pid, process.state, time, sequence=checkpoint.sequence)
        self.checkpoints_taken[pid] += 1

    def total_checkpoints(self) -> int:
        return sum(self.checkpoints_taken.values())


class CommunicationInducedCheckpointing(_CheckpointingHookBase):
    """Checkpoint every process immediately before it receives a message.

    ``also_on_start`` additionally captures one checkpoint per process
    when the run starts, so even a process that never receives anything
    has a rollback target.
    """

    def __init__(
        self,
        store: Optional[CheckpointStore] = None,
        cow_store: Optional[CowPageStore] = None,
        also_on_start: bool = True,
    ) -> None:
        super().__init__(store, cow_store)
        self.also_on_start = also_on_start

    def on_run_start(self, time: float) -> None:
        if not self.also_on_start or self._cluster is None:
            return
        for pid in self._cluster.pids:
            self.take_checkpoint(pid, time)

    def before_receive(self, pid, message, time):
        self.take_checkpoint(pid, time)


class PeriodicCheckpointing(_CheckpointingHookBase):
    """Uncoordinated checkpointing: every ``period`` completed handlers per process."""

    def __init__(
        self,
        period: int = 10,
        store: Optional[CheckpointStore] = None,
        cow_store: Optional[CowPageStore] = None,
        also_on_start: bool = True,
    ) -> None:
        super().__init__(store, cow_store)
        if period <= 0:
            raise ValueError("checkpoint period must be positive")
        self.period = period
        self.also_on_start = also_on_start
        self._handler_counts: Dict[str, int] = defaultdict(int)

    def on_run_start(self, time: float) -> None:
        if not self.also_on_start or self._cluster is None:
            return
        for pid in self._cluster.pids:
            self.take_checkpoint(pid, time)

    def after_handler(self, pid, description, time):
        self._handler_counts[pid] += 1
        if self._handler_counts[pid] % self.period == 0:
            self.take_checkpoint(pid, time)
