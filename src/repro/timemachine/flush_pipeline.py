"""A bounded background writer taking durable flush IO off the commit path.

In sync mode every ``RollbackManager.commit`` pays for its blob writes
and fsyncs inline: the run is stalled for the full disk round-trip of
the committed line plus its Scroll window.  FixD monitors *deployed*
applications, so that stall lands on the serving hot path.  This module
moves the IO to a single background worker thread fed by a bounded
FIFO queue:

* the **hot path** only snapshots what must be written (already-pickled
  chunk bytes, the Scroll tail slice, the pending-event snapshot) and
  enqueues a job — wall time per commit drops to the snapshot cost;
* the **worker** executes jobs strictly in submission order, so every
  crash-window invariant of the sync path carries over unchanged:
  blobs land first, the line manifest rename is last, and the scroll
  sidecar (queued after its line) can never prune segments before the
  manifest referencing their replay window is durable;
* the queue is **bounded by payload bytes** (``max_bytes``): a submit
  that would overflow it blocks until the worker drains — commit stall
  degrades gracefully back toward sync behaviour instead of growing the
  heap without limit;
* a job that raises **poisons the pipeline**: the remaining queue is
  discarded (executing a sidecar rewrite after its line flush failed
  would violate the ordering invariant) and the error re-raises on the
  next ``submit``/``drain``, so callers observe the failure exactly
  once, just later than the sync path would have shown it;
* ``drain()`` is the **hard barrier**: it returns only when every
  submitted job has executed (or re-raises the poisoning error).  The
  durable store drains at rollback, rotation/GC, run end, and before
  reading its own stats, so every read-after-write site sees the same
  store a sync-mode caller would.

The worker is a daemon thread: an abandoned pipeline never blocks
interpreter exit — exactly the crash the durable store's atomic-write
discipline is designed to survive.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Dict, Optional

from repro.errors import CheckpointError

#: default queue bound: roughly a handful of committed lines of a large
#: state before backpressure kicks in
DEFAULT_FLUSH_QUEUE_BYTES = 32 * 1024 * 1024


class FlushPipeline:
    """One background worker executing flush jobs in strict FIFO order."""

    def __init__(self, max_bytes: int = DEFAULT_FLUSH_QUEUE_BYTES, name: str = "flush") -> None:
        if max_bytes < 1:
            raise CheckpointError("flush_queue_bytes must be at least 1")
        self.max_bytes = max_bytes
        self._queue: deque = deque()
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._queued_bytes = 0
        self._active = False          # worker is executing a job right now
        self._error: Optional[BaseException] = None
        self._closed = False
        #: counters for stats(); written under the lock
        self.jobs_enqueued = 0
        self.jobs_completed = 0
        self.enqueue_stall_s = 0.0
        self.peak_queue_bytes = 0
        self._worker = threading.Thread(
            target=self._run, name=f"{name}-pipeline", daemon=True
        )
        self._worker.start()

    # ------------------------------------------------------------------
    # hot-path side
    # ------------------------------------------------------------------
    def submit(self, job: Callable[[], None], cost: int = 0) -> None:
        """Enqueue ``job``; blocks while the queue is over ``max_bytes``.

        ``cost`` is the job's retained payload size in bytes — what the
        bound meters.  A single oversized job is still accepted once the
        queue is empty (the bound throttles, it never rejects).
        """
        cost = max(0, int(cost))
        with self._wake:
            self._raise_if_poisoned()
            if self._closed:
                raise CheckpointError("flush pipeline is closed")
            if self._queued_bytes + cost > self.max_bytes and self._queue:
                stalled_at = time.perf_counter()
                while self._queued_bytes + cost > self.max_bytes and self._queue:
                    self._wake.wait()
                    self._raise_if_poisoned()
                self.enqueue_stall_s += time.perf_counter() - stalled_at
            self._queue.append((job, cost))
            self._queued_bytes += cost
            self.peak_queue_bytes = max(self.peak_queue_bytes, self._queued_bytes)
            self.jobs_enqueued += 1
            self._wake.notify_all()

    def drain(self) -> None:
        """Block until every submitted job has executed; re-raise any failure."""
        with self._wake:
            while self._error is None and (self._queue or self._active):
                self._wake.wait()
            self._raise_if_poisoned()

    def close(self) -> None:
        """Drain and stop the worker (idempotent; used by tests and teardown)."""
        try:
            self.drain()
        finally:
            with self._wake:
                self._closed = True
                self._wake.notify_all()
            self._worker.join(timeout=5.0)

    def stats(self) -> Dict[str, float]:
        with self._lock:
            return {
                "jobs_enqueued": self.jobs_enqueued,
                "jobs_completed": self.jobs_completed,
                "enqueue_stall_s": self.enqueue_stall_s,
                "peak_queue_bytes": self.peak_queue_bytes,
            }

    def _raise_if_poisoned(self) -> None:
        if self._error is not None:
            error, self._error = self._error, None
            # surface the worker's failure with its original type when it
            # already is a store error; wrap anything else so callers see
            # the durable layer as the source
            raise error

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            with self._wake:
                # wake only for work or shutdown — a stashed error is the
                # hot path's to observe, not a reason to spin here
                while not self._queue and not self._closed:
                    self._wake.wait()
                if self._closed and not self._queue:
                    return
                job, cost = self._queue.popleft()
                self._queued_bytes -= cost
                self._active = True
                self._wake.notify_all()
            try:
                job()
            except BaseException as exc:  # noqa: BLE001 - stashed, re-raised at the barrier
                with self._wake:
                    # poisoned: discard the rest — executing job N+1 after
                    # job N failed would break the blobs-first/manifest-last
                    # and manifest-before-sidecar orderings
                    self._error = exc
                    self._queue.clear()
                    self._queued_bytes = 0
                    self._active = False
                    self._wake.notify_all()
                continue
            with self._wake:
                self._active = False
                self.jobs_completed += 1
                self._wake.notify_all()
