"""Safe global recovery lines (paper Figure 6).

A *recovery line* is one checkpoint per process such that the resulting
global state is consistent: no checkpoint reflects the receipt of a
message that, in the restored world, was never sent.  Figure 6 of the
paper shows the classic picture — after process B fails, the system must
not roll B back to a checkpoint that has "seen" a message from A unless A
also rolls back past the corresponding send.

Consistency test
----------------
With vector clocks the condition is compact.  Let ``C_i.vt`` be the
vector timestamp of process *i*'s candidate checkpoint.  The set
``{C_i}`` is consistent iff for every ordered pair *(i, j)*::

    C_i.vt[j] <= C_j.vt[j]

i.e. process *i* must not have observed more of *j*'s history than *j*
itself has at its own checkpoint (an observed-but-not-sent message would
violate exactly this).

Computation
-----------
:func:`compute_recovery_line` starts from the most recent checkpoint of
every process (optionally bounded by a target time for the failed
process) and repeatedly rolls individual processes further back until the
consistency condition holds — the standard rollback-propagation
algorithm.  With *uncoordinated* checkpointing this can cascade all the
way to the initial states (the domino effect); with
communication-induced checkpointing a consistent line at (or very near)
the failure point always exists, which is the property the
ablation-ckpt-policy benchmark quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dsim.process import ProcessCheckpoint
from repro.errors import RecoveryLineError
from repro.timemachine.checkpoint import (
    CheckpointStore,
    GlobalCheckpoint,
    stamped_scroll_position,
)


def is_consistent(checkpoints: Dict[str, ProcessCheckpoint]) -> bool:
    """True when the given one-checkpoint-per-process set is globally consistent."""
    pids = list(checkpoints)
    for i in pids:
        vt_i = checkpoints[i].vt
        for j in pids:
            if i == j:
                continue
            observed_of_j = vt_i.component(j)
            own_of_j = checkpoints[j].vt.component(j)
            if observed_of_j > own_of_j:
                return False
    return True


def inconsistent_pairs(checkpoints: Dict[str, ProcessCheckpoint]) -> List[Tuple[str, str]]:
    """All ordered pairs ``(i, j)`` where ``i`` observed more of ``j`` than ``j`` has."""
    pids = list(checkpoints)
    pairs: List[Tuple[str, str]] = []
    for i in pids:
        for j in pids:
            if i == j:
                continue
            if checkpoints[i].vt.component(j) > checkpoints[j].vt.component(j):
                pairs.append((i, j))
    return pairs


@dataclass
class RecoveryLine:
    """The result of a recovery-line computation."""

    checkpoints: Dict[str, ProcessCheckpoint]
    rolled_back_steps: Dict[str, int]
    iterations: int
    domino_effect: bool
    label: str = "recovery-line"

    def as_global_checkpoint(self) -> GlobalCheckpoint:
        bundle = GlobalCheckpoint(label=self.label)
        for checkpoint in self.checkpoints.values():
            bundle.add(checkpoint)
        return bundle

    @property
    def pids(self) -> List[str]:
        return sorted(self.checkpoints)

    def total_rollback_steps(self) -> int:
        """How many checkpoints, summed over processes, were discarded to reach the line."""
        return sum(self.rolled_back_steps.values())

    def earliest_time(self) -> float:
        return min((c.time for c in self.checkpoints.values()), default=0.0)

    def latest_time(self) -> float:
        return max((c.time for c in self.checkpoints.values()), default=0.0)

    def scroll_position(self) -> Optional[int]:
        """Scroll end position the line corresponds to, when recorded.

        Everything after the earliest stamped position belongs to at
        least one process's rolled-back future, so that is where a
        rollback may truncate the log (see
        :func:`~repro.timemachine.checkpoint.stamped_scroll_position`).
        """
        return stamped_scroll_position(self.checkpoints.values())


def _initial_candidates(
    store: CheckpointStore,
    pids: Sequence[str],
    not_after: Optional[Dict[str, float]] = None,
) -> Dict[str, List[ProcessCheckpoint]]:
    """Per-process candidate lists (oldest -> newest), bounded by ``not_after`` times."""
    candidates: Dict[str, List[ProcessCheckpoint]] = {}
    for pid in pids:
        log = store.log_for(pid)
        checkpoints = log.all()
        if not checkpoints:
            raise RecoveryLineError(f"process {pid!r} has no checkpoints to roll back to")
        bound = (not_after or {}).get(pid)
        if bound is not None:
            checkpoints = [c for c in checkpoints if c.time <= bound]
            if not checkpoints:
                raise RecoveryLineError(
                    f"process {pid!r} has no checkpoint at or before time {bound}"
                )
        candidates[pid] = checkpoints
    return candidates


def compute_recovery_line(
    store: CheckpointStore,
    pids: Optional[Sequence[str]] = None,
    not_after: Optional[Dict[str, float]] = None,
    max_iterations: int = 10_000,
) -> RecoveryLine:
    """Compute the most recent consistent recovery line from a checkpoint store.

    Parameters
    ----------
    store:
        The per-process checkpoint logs (however they were produced).
    pids:
        The processes that must participate; defaults to every process in
        the store.
    not_after:
        Optional per-process upper bounds on checkpoint time — the failed
        process typically must roll back to *before* the failure, so its
        bound is the failure time.
    max_iterations:
        Safety valve on the rollback-propagation loop.

    Returns the :class:`RecoveryLine`; raises
    :class:`~repro.errors.RecoveryLineError` when no consistent line
    exists even at the earliest available checkpoints.
    """
    involved = list(pids) if pids is not None else store.pids()
    if not involved:
        raise RecoveryLineError("no processes to compute a recovery line for")
    candidates = _initial_candidates(store, involved, not_after)

    # Cursor per process: index into its candidate list, starting at the newest.
    cursor = {pid: len(candidates[pid]) - 1 for pid in involved}
    iterations = 0
    while True:
        iterations += 1
        if iterations > max_iterations:
            raise RecoveryLineError("recovery-line computation did not converge")
        current = {pid: candidates[pid][cursor[pid]] for pid in involved}
        bad_pairs = inconsistent_pairs(current)
        if not bad_pairs:
            break
        # Roll back the *observer* of every inconsistent pair: process i saw a
        # message that j has not sent at its checkpoint, so i must move to an
        # earlier checkpoint.  Rolling back observers is what propagates the
        # rollback (and, with uncoordinated checkpoints, produces the domino
        # effect the paper warns about).
        progressed = False
        for observer, _witness in bad_pairs:
            if cursor[observer] > 0:
                cursor[observer] -= 1
                progressed = True
        if not progressed:
            raise RecoveryLineError(
                "no consistent recovery line exists even at the earliest checkpoints; "
                "the processes observed messages that predate every stored checkpoint"
            )

    rolled_back = {
        pid: (len(candidates[pid]) - 1) - cursor[pid] for pid in involved
    }
    domino = any(cursor[pid] == 0 and len(candidates[pid]) > 1 for pid in involved)
    return RecoveryLine(
        checkpoints={pid: candidates[pid][cursor[pid]] for pid in involved},
        rolled_back_steps=rolled_back,
        iterations=iterations,
        domino_effect=domino,
    )


def unsafe_line(store: CheckpointStore, pids: Optional[Sequence[str]] = None) -> GlobalCheckpoint:
    """The naive "latest checkpoint of everyone" line (Figure 6's *unsafe* line).

    Provided so tests and benchmarks can demonstrate why simply taking
    everyone's newest checkpoint is not enough: the returned bundle is
    frequently inconsistent under uncoordinated checkpointing.
    """
    involved = list(pids) if pids is not None else store.pids()
    bundle = GlobalCheckpoint(label="unsafe-latest")
    for pid in involved:
        latest = store.latest(pid)
        if latest is None:
            raise RecoveryLineError(f"process {pid!r} has no checkpoints")
        bundle.add(latest)
    return bundle
