"""A durable content-addressed blob store for committed recovery lines.

In-memory COW checkpoints (:mod:`repro.timemachine.cow`) die with the
experiment process: a crashed run loses every recovery line it paid to
capture.  This module makes *committed* lines durable with the same
content-addressing idea taken to disk:

* every chunk of every checkpointed state value is pickled and stored as
  a **SHA-256-named blob file** (``blobs/<aa>/<sha256>.blob``, sharded
  by the first address byte).  Identical chunks — across keys,
  checkpoints, processes and even runs — share one file, so dedup comes
  free from the naming scheme;
* blob writes are **atomic and durable**: bytes go to a ``*.tmp`` file
  in the same directory, are fsynced, ``os.replace``d into the final
  name, and the parent directory is fsynced so the rename itself
  survives power loss.  A writer killed mid-flush leaves at worst an
  orphaned or truncated tmp file, never a half-written addressed blob;
* reads **validate integrity**: a blob whose bytes no longer hash to its
  file name raises :class:`repro.errors.BlobIntegrityError` instead of
  silently restoring corrupt state;
* **run-scoped manifests** (``runs/<run_id>/run.json`` plus one
  ``line-NNNNNN.json`` per committed recovery line, both atomically
  written JSON) record which blobs make up each committed line, along
  with the process metadata (vector clocks, RNG draw counts, message
  counters) needed to rebuild :class:`repro.dsim.process.ProcessCheckpoint`
  objects for :meth:`Experiment.resume`;
* **rotation/GC is refcount-driven below committed lines**: dropping old
  line manifests (``rotate``) treats only the blobs those manifests
  referenced as collection candidates, subtracts everything the
  manifests that remain — across *all* runs sharing the store — still
  reference, and unlinks the rest.  ``gc()`` is the full-store sweep
  for offline maintenance.  Sweeps take an **exclusive store lock**
  (``flock`` on ``store.lock``) while flushes hold it shared for their
  blobs-then-manifest write window, so a sweep can never run between
  another process's blob puts and the manifest that makes them
  reachable; where ``flock`` is unavailable, sweeps instead skip blobs
  younger than :data:`GC_GRACE_SECONDS`.

Chunk layout on disk is produced by the same pure chunk codec the
in-memory store uses (:func:`repro.timemachine.cow.chunk_items`), so a
value that was cheap to capture incrementally is equally cheap to flush:
unchanged chunks hash to addresses that already exist on disk and are
skipped.

SHA-256 (not the BLAKE2b-128 of the in-memory hot path) names the
files: durable addresses double as an integrity check and follow the
conventional content-address format for on-disk stores.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

from repro.dsim.clock import VectorTimestamp
from repro.dsim.process import ProcessCheckpoint
from repro.errors import BlobIntegrityError, CheckpointError
from repro.timemachine.cow import (
    DEFAULT_CHUNK_ELEMS,
    DEFAULT_CHUNK_THRESHOLD,
    _CachedChunked,
    _CachedKey,
    assemble_chunked,
    chunk_items,
    chunk_kind,
)
from repro.timemachine.flush_pipeline import DEFAULT_FLUSH_QUEUE_BYTES, FlushPipeline

#: v1 line manifests carried the committed Scroll position only per-pid in
#: ``checkpoints.*.extra.scroll_position``; v2 lifts the line-wide frontier to
#: a top-level ``scroll_position`` field (what commit-ordering checks and the
#: scroll sidecar key on).  Old stores read through :func:`migrate_manifest`.
MANIFEST_SCHEMA = 2

#: without an advisory store lock, sweeps skip blobs younger than this —
#: another process may have written them for a manifest it has not landed yet
GC_GRACE_SECONDS = 60.0

_JSON_SCALARS = (str, int, float, bool, type(None))


def _json_safe(mapping: Dict[str, Any]) -> Dict[str, Any]:
    """The JSON-representable subset of a checkpoint's ``extra`` mapping."""
    return {
        key: value
        for key, value in mapping.items()
        if isinstance(key, str) and isinstance(value, _JSON_SCALARS)
    }


def _fsync_dir(path: Path) -> None:
    """fsync a directory so a rename into it survives power loss, not just a crash."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. directories are not openable
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - filesystems without dir fsync
        pass
    finally:
        os.close(fd)


def _atomic_write(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` via tmp+rename so readers never see a torn file."""
    tmp = path.parent / f"{path.name}.{os.getpid()}.tmp"
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_dir(path.parent)


def _line_scroll_position(manifest: Dict[str, Any]) -> Optional[int]:
    """Line-wide Scroll frontier: the earliest position any member stamped."""
    positions = [
        entry.get("extra", {}).get("scroll_position")
        for entry in manifest.get("checkpoints", {}).values()
    ]
    positions = [position for position in positions if isinstance(position, int)]
    return min(positions) if positions else None


def _migrate_manifest_v1(manifest: Dict[str, Any]) -> Dict[str, Any]:
    """v1 → v2: lift the per-pid scroll positions to a top-level frontier."""
    manifest = dict(manifest)
    manifest["scroll_position"] = _line_scroll_position(manifest)
    manifest["schema"] = 2
    return manifest


#: schema migrations, keyed by the version they read; applied in sequence
#: until the manifest reaches :data:`MANIFEST_SCHEMA`
_MANIFEST_MIGRATIONS = {1: _migrate_manifest_v1}


def migrate_manifest(manifest: Dict[str, Any]) -> Dict[str, Any]:
    """Upgrade a line manifest to the current schema (validating versions).

    Manifests written by older stores are migrated step-by-step through
    :data:`_MANIFEST_MIGRATIONS`; manifests from a *newer* store raise —
    guessing at fields this code has never seen could restore wrong state.
    """
    schema = manifest.get("schema", 1)
    if schema > MANIFEST_SCHEMA:
        raise CheckpointError(
            f"line manifest schema {schema} is newer than supported "
            f"({MANIFEST_SCHEMA}); upgrade before resuming"
        )
    while schema < MANIFEST_SCHEMA:
        migrate = _MANIFEST_MIGRATIONS.get(schema)
        if migrate is None:
            raise CheckpointError(f"no migration path from manifest schema {schema}")
        manifest = migrate(manifest)
        schema = manifest.get("schema", schema + 1)
    return manifest


def _manifest_blobs(manifest: Dict[str, Any]) -> Set[str]:
    """Every blob address a line manifest references."""
    names: Set[str] = set()
    for entry in manifest.get("checkpoints", {}).values():
        for layout in entry.get("state", {}).values():
            names.update(layout.get("chunks", ()))
            names.update(layout.get("order", ()))
    return names


class _StoreLock:
    """Advisory inter-process lock serializing GC sweeps against flushes.

    Flushes hold the lock *shared* over their blobs-then-manifest write
    window; sweeps hold it *exclusive* — so a sweep can never land
    between another process's blob puts and the manifest write that
    makes those blobs reachable.  Backed by ``flock`` on
    ``<root>/store.lock``; where ``flock`` is unavailable the lock is a
    no-op and sweeps fall back to the mtime grace window instead.
    """

    def __init__(self, root: Path) -> None:
        self.path = Path(root) / "store.lock"

    @property
    def available(self) -> bool:
        return fcntl is not None

    @contextmanager
    def _held(self, flags: int):
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            yield
            return
        fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            fcntl.flock(fd, flags)
            yield
        finally:
            os.close(fd)  # closing the fd releases the flock

    def shared(self):
        return self._held(fcntl.LOCK_SH if fcntl else 0)

    def exclusive(self):
        return self._held(fcntl.LOCK_EX if fcntl else 0)


@dataclass
class IntegrityReport:
    """What :meth:`BlobStore.validate_integrity` found (and optionally repaired)."""

    blobs_checked: int = 0
    corrupt: List[str] = field(default_factory=list)
    tmp_orphans: int = 0
    removed: int = 0

    @property
    def ok(self) -> bool:
        return not self.corrupt


class BlobStore:
    """SHA-256-addressed blob files with atomic writes and validated reads."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.blob_root = self.root / "blobs"
        self.blob_root.mkdir(parents=True, exist_ok=True)
        self._write_counter = 0

    @staticmethod
    def address(data: bytes) -> str:
        return hashlib.sha256(data).hexdigest()

    def _path(self, name: str) -> Path:
        return self.blob_root / name[:2] / f"{name}.blob"

    def put(self, data: bytes) -> Tuple[str, bool]:
        """Store ``data``; returns ``(address, written)``.

        ``written`` is False when a blob with this address already
        exists — the content-addressed dedup case — in which case no
        bytes touch the disk.
        """
        name = self.address(data)
        path = self._path(name)
        if path.exists():
            return name, False
        path.parent.mkdir(parents=True, exist_ok=True)
        self._write_counter += 1
        tmp = path.parent / f"{name}.{os.getpid()}.{self._write_counter}.tmp"
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        _fsync_dir(path.parent)
        return name, True

    def get(self, name: str) -> bytes:
        """Read a blob, verifying its bytes still hash to its address."""
        path = self._path(name)
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            raise CheckpointError(f"blob {name!r} is missing from the store") from None
        if self.address(data) != name:
            raise BlobIntegrityError(
                f"blob {name!r} failed integrity validation: stored bytes hash to "
                f"{self.address(data)!r}"
            )
        return data

    def exists(self, name: str) -> bool:
        return self._path(name).exists()

    def delete(self, name: str) -> bool:
        try:
            self._path(name).unlink()
            return True
        except FileNotFoundError:
            return False

    def blob_names(self) -> Iterator[str]:
        for shard in sorted(self.blob_root.iterdir()):
            if not shard.is_dir():
                continue
            for entry in sorted(shard.iterdir()):
                if entry.suffix == ".blob":
                    yield entry.stem

    def bytes_on_disk(self) -> int:
        return sum(
            entry.stat().st_size
            for shard in self.blob_root.iterdir()
            if shard.is_dir()
            for entry in shard.iterdir()
            if entry.suffix == ".blob"
        )

    def validate_integrity(self, repair: bool = False) -> IntegrityReport:
        """Re-hash every blob and sweep writer-crash leftovers.

        Orphaned ``*.tmp`` files (a writer died between write and
        rename) are always removed — they were never addressable, so no
        committed line can reference them.  Corrupt addressed blobs are
        reported, and removed only with ``repair=True`` (a removed blob
        surfaces as a missing-blob error on restore rather than as
        silently wrong bytes).
        """
        report = IntegrityReport()
        for shard in sorted(self.blob_root.iterdir()):
            if not shard.is_dir():
                continue
            for entry in sorted(shard.iterdir()):
                if entry.name.endswith(".tmp"):
                    entry.unlink()
                    report.tmp_orphans += 1
                    continue
                if entry.suffix != ".blob":
                    continue
                report.blobs_checked += 1
                if self.address(entry.read_bytes()) != entry.stem:
                    report.corrupt.append(entry.stem)
                    if repair:
                        entry.unlink()
                        report.removed += 1
        return report


class DurableCheckpointStore:
    """Run-scoped durable manifests over a shared :class:`BlobStore`.

    One instance serves one run (``run_id``); the underlying blob store
    is shared by every run under the same root, which is what makes
    cross-run dedup work.  ``flush_line`` persists one committed
    recovery line; the class methods read stores back without needing a
    live instance (that is what resume uses — the writing process is
    gone).
    """

    def __init__(
        self,
        root,
        run_id: str,
        chunk_threshold: Optional[int] = DEFAULT_CHUNK_THRESHOLD,
        chunk_elems: int = DEFAULT_CHUNK_ELEMS,
        order_elems: Optional[int] = None,
        keep_lines: Optional[int] = None,
        flush_mode: str = "sync",
        flush_queue_bytes: int = DEFAULT_FLUSH_QUEUE_BYTES,
    ) -> None:
        if not run_id:
            raise CheckpointError("a durable checkpoint store needs a non-empty run_id")
        if any(sep in run_id for sep in ("/", "\\", "\0")) or run_id in (".", ".."):
            raise CheckpointError(
                f"run_id {run_id!r} is not a safe path component "
                "(no separators, '.' or '..')"
            )
        if keep_lines is not None and keep_lines < 1:
            raise CheckpointError("keep_lines must be at least 1 (or None to keep all)")
        if flush_mode not in ("sync", "pipelined"):
            raise CheckpointError(
                f"flush_mode must be 'sync' or 'pipelined', not {flush_mode!r}"
            )
        self.root = Path(root)
        self.run_id = run_id
        self.blobs = BlobStore(self.root)
        self.chunk_threshold = chunk_threshold
        self.chunk_elems = chunk_elems
        self.order_elems = order_elems if order_elems is not None else chunk_elems * 8
        self.keep_lines = keep_lines
        self.run_dir = self.root / "runs" / run_id
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self._lock = _StoreLock(self.root)
        self._line_index = self._highest_line_index()
        #: blob addresses flushed earlier in this run (the "reused" tier)
        self._seen: set = set()
        self.lines_committed = 0
        self.chunks_written = 0
        self.chunks_deduped = 0
        self.chunks_reused = 0
        self.chunks_cached = 0
        self.logical_bytes = 0
        #: commit-path serialization accounting: bytes pickled / hashed at
        #: flush time (what the zero-re-pickle path keeps near zero)
        self.commit_pickled_bytes = 0
        self.commit_hashed_bytes = 0
        self.flush_mode = flush_mode
        self.flush_queue_bytes = flush_queue_bytes
        #: background writer in pipelined mode; None means fully synchronous
        self.pipeline: Optional[FlushPipeline] = (
            FlushPipeline(flush_queue_bytes, name=run_id)
            if flush_mode == "pipelined"
            else None
        )
        #: lazily-built ScrollPersistence sharing this store's blobs and lock
        self._scroll_persistence = None

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def set_run_metadata(self, payload: Dict[str, Any]) -> None:
        """Atomically record run-level metadata (e.g. the Scenario) in run.json."""
        document = {"schema": MANIFEST_SCHEMA, "run_id": self.run_id}
        document.update(payload)
        _atomic_write(
            self.run_dir / "run.json",
            (json.dumps(document, sort_keys=True, indent=2) + "\n").encode("utf-8"),
        )

    def flush_line(self, line, chunk_sources=None) -> Dict[str, int]:
        """Persist one committed recovery line; returns per-flush counters.

        Every state key of every member checkpoint is chunked with the
        same pure codec the in-memory store uses, each chunk blob is
        ``put`` into the content-addressed store (a no-op for chunks
        whose address already exists), and a line manifest naming the
        blobs is atomically written.  The manifest write is last, so a
        crash mid-flush leaves the previous committed line as the
        newest readable one — never a partial line.

        ``chunk_sources`` maps ``pid -> {key: cached chunk entries}``
        straight out of the COW page store
        (:meth:`~repro.timemachine.cow.CowPageStore.chunk_sources`): a
        key covered there flushes the *capture-time* pickled bytes
        without re-pickling, and a chunk whose durable address was
        learned on an earlier commit and still exists on disk is flushed
        by address alone — zero pickling, zero hashing, zero content IO.
        Keys without a cached source fall back to re-chunking.

        In pipelined mode the blob writes and the manifest rename run on
        the background writer; the returned counter dict is filled in as
        the job executes and is complete once :meth:`drain` returns.
        """
        flushed = {
            "chunks_written": 0,
            "chunks_deduped": 0,
            "chunks_reused": 0,
            "chunks_cached": 0,
            "logical_bytes": 0,
            "pickled_bytes": 0,
            "hashed_bytes": 0,
        }
        payload, cost = self._prepare_line(line, chunk_sources, flushed)

        def job() -> None:
            # holding the store lock shared keeps concurrent sweeps out of
            # the window between the blob puts and the manifest write
            with self._lock.shared():
                self._write_line_locked(payload, flushed)
            if self.keep_lines is not None:
                self._rotate_locked_path(self.keep_lines)

        self._submit(job, cost)
        return flushed

    def _prepare_line(self, line, chunk_sources, flushed: Dict[str, int]):
        """Snapshot everything a line flush will write (the commit hot path).

        Pickling happens here only for keys without a cached chunk
        source; everything the job needs afterwards is immutable bytes
        plus JSON-safe metadata, so the write itself can run on the
        background pipeline without racing later state mutations.
        """
        checkpoints = []
        cost = 0
        for pid, checkpoint in sorted(line.checkpoints.items()):
            source = (chunk_sources or {}).get(pid) or {}
            state_entries = []
            for key, value in checkpoint.state.items():
                cached = source.get(key)
                if isinstance(cached, _CachedKey):
                    kind = "whole"
                    entries: List[_CachedKey] = [cached]
                    order_entries: List[_CachedKey] = []
                elif isinstance(cached, _CachedChunked):
                    kind = cached.kind
                    entries = list(cached.chunks)
                    order_entries = list(cached.order)
                else:
                    kind = chunk_kind(value, self.chunk_threshold)
                    if kind is None:
                        kind = "whole"
                        blobs = [self._pickle_chunk(key, value)]
                        order_blobs: List[bytes] = []
                    else:
                        value_chunks, order_chunks = chunk_items(
                            kind, value, self.chunk_elems, self.order_elems
                        )
                        blobs = [self._pickle_chunk(key, chunk) for chunk in value_chunks]
                        order_blobs = [
                            self._pickle_chunk(key, chunk) for chunk in order_chunks
                        ]
                    flushed["pickled_bytes"] += sum(len(blob) for blob in blobs)
                    flushed["pickled_bytes"] += sum(len(blob) for blob in order_blobs)
                    entries = [_CachedKey(value=None, blob=blob, hashes=[]) for blob in blobs]
                    order_entries = [
                        _CachedKey(value=None, blob=blob, hashes=[]) for blob in order_blobs
                    ]
                for entry in entries:
                    if entry.address is None:
                        cost += len(entry.blob)
                for entry in order_entries:
                    if entry.address is None:
                        cost += len(entry.blob)
                state_entries.append((key, kind, entries, order_entries))
            checkpoints.append(
                (
                    pid,
                    {
                        "sequence": checkpoint.sequence,
                        "time": checkpoint.time,
                        "vt": checkpoint.vt.as_dict(),
                        "lamport": checkpoint.lamport,
                        "rng_draws": checkpoint.rng_draws,
                        "sent_count": checkpoint.sent_count,
                        "received_count": checkpoint.received_count,
                        "extra": _json_safe(checkpoint.extra),
                    },
                    state_entries,
                )
            )
        position = getattr(line, "scroll_position", None)
        payload = {
            "label": getattr(line, "label", ""),
            "scroll_position": position() if callable(position) else position,
            "checkpoints": checkpoints,
        }
        return payload, cost

    def _write_line_locked(self, payload, flushed: Dict[str, int]) -> None:
        checkpoints_payload: Dict[str, Any] = {}
        for pid, meta, state_entries in payload["checkpoints"]:
            state_payload: Dict[str, Any] = {}
            for key, kind, entries, order_entries in state_entries:
                state_payload[key] = {
                    "kind": kind,
                    "chunks": [self._put_entry(entry, flushed) for entry in entries],
                    "order": [self._put_entry(entry, flushed) for entry in order_entries],
                }
            checkpoints_payload[pid] = dict(meta, state=state_payload)
        self._line_index += 1
        manifest = {
            "schema": MANIFEST_SCHEMA,
            "run_id": self.run_id,
            "index": self._line_index,
            "label": payload["label"],
            "scroll_position": payload["scroll_position"],
            "checkpoints": checkpoints_payload,
        }
        _atomic_write(
            self.run_dir / f"line-{self._line_index:06d}.json",
            (json.dumps(manifest, sort_keys=True, indent=2) + "\n").encode("utf-8"),
        )
        self.lines_committed += 1
        self.chunks_written += flushed["chunks_written"]
        self.chunks_deduped += flushed["chunks_deduped"]
        self.chunks_reused += flushed["chunks_reused"]
        self.chunks_cached += flushed["chunks_cached"]
        self.logical_bytes += flushed["logical_bytes"]
        self.commit_pickled_bytes += flushed["pickled_bytes"]
        self.commit_hashed_bytes += flushed["hashed_bytes"]

    def _pickle_chunk(self, key: str, value: Any) -> bytes:
        try:
            return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise CheckpointError(
                f"state key {key!r} is not serializable for the durable store: {exc}"
            ) from exc

    def _put_entry(self, entry: _CachedKey, flushed: Dict[str, int]) -> str:
        flushed["logical_bytes"] += len(entry.blob)
        name = entry.address
        if name is not None:
            # the zero-cost tier: address learned on an earlier commit.
            # _seen alone is not proof the blob survives: a rotation (ours
            # or another run's) may have unlinked it since it was first
            # put, so a recurring chunk must be re-written when its file
            # is gone — the cached address itself stays valid (the bytes
            # are immutable).
            if name in self._seen and self.blobs.exists(name):
                flushed["chunks_reused"] += 1
                flushed["chunks_cached"] += 1
                return name
        else:
            flushed["hashed_bytes"] += len(entry.blob)
            name = self.blobs.address(entry.blob)
            entry.address = name
            if name in self._seen and self.blobs.exists(name):
                flushed["chunks_reused"] += 1
                return name
        _, written = self.blobs.put(entry.blob)
        if written:
            flushed["chunks_written"] += 1
        else:
            flushed["chunks_deduped"] += 1
        self._seen.add(name)
        return name

    # ------------------------------------------------------------------
    # durable Scroll (continuation support)
    # ------------------------------------------------------------------
    @property
    def scroll_persistence(self):
        """The run's :class:`~repro.timemachine.scroll_persistence.ScrollPersistence`."""
        if self._scroll_persistence is None:
            from repro.timemachine.scroll_persistence import ScrollPersistence

            self._scroll_persistence = ScrollPersistence(self)
        return self._scroll_persistence

    def flush_scroll(
        self,
        scroll,
        pending=None,
        now: float = 0.0,
        committed_position: Optional[int] = None,
    ) -> Dict[str, int]:
        """Persist the Scroll tail (and in-flight snapshot) for this run.

        Delegates to the run's scroll-persistence sidecar; see
        :meth:`repro.timemachine.scroll_persistence.ScrollPersistence.flush`.
        """
        return self.scroll_persistence.flush(scroll, pending, now, committed_position)

    def scroll_entries_pending(self, scroll) -> int:
        """Recorded entries not yet covered by a durable segment."""
        return self.scroll_persistence.pending_entries(scroll)

    @classmethod
    def load_scroll_sidecar(cls, root, run_id: str) -> Optional[Dict[str, Any]]:
        """The run's persisted-scroll sidecar manifest, or None when absent."""
        from repro.timemachine.scroll_persistence import ScrollPersistence

        return ScrollPersistence.load_sidecar(root, run_id)

    @classmethod
    def rebuild_scroll(cls, root, run_id: str):
        """Rebuild ``(scroll, sidecar, pending)`` for a resumed continuation."""
        from repro.timemachine.scroll_persistence import ScrollPersistence

        return ScrollPersistence.rebuild(root, run_id)

    # ------------------------------------------------------------------
    # rotation / GC
    # ------------------------------------------------------------------
    def rotate(self, keep_lines: int) -> int:
        """Drop all but the newest ``keep_lines`` line manifests, then sweep.

        Only blobs the *dropped* manifests referenced are collection
        candidates, so a rotation reads the dropped manifests plus the
        surviving manifests of every run under this root — never the
        whole blob tree.  Per-commit cost is proportional to the live
        state, not to store history.  Candidates a surviving line (of
        any run) still references are kept, so rotating one run never
        breaks another's.  Returns the number of blobs unlinked.

        A hard pipeline barrier: queued flushes land first, so a sweep
        never reads a manifest set that is about to grow.
        """
        self.drain()
        return self._rotate_locked_path(keep_lines)

    def _rotate_locked_path(self, keep_lines: int) -> int:
        """The rotation body; also runs *on* the pipeline worker after each
        pipelined line flush, where draining would self-deadlock."""
        if keep_lines < 1:
            raise CheckpointError("keep_lines must be at least 1")
        with self._lock.exclusive():
            manifests = self._line_paths(self.run_dir)
            dropped = manifests[:-keep_lines]
            candidates: Set[str] = set()
            for path in dropped:
                manifest = _read_json(path)
                if manifest is not None:
                    candidates |= _manifest_blobs(manifest)
            for path in dropped:
                path.unlink()
            if not candidates:
                return 0
            return self._sweep(candidates - self._reachable_blobs())

    def gc(self) -> int:
        """Unlink every blob no committed line manifest references any more.

        The full O(store size) sweep: it lists every blob on disk.  Use
        it for offline maintenance and post-crash cleanup; per-commit
        rotation uses the incremental candidate sweep in :meth:`rotate`.
        Like :meth:`rotate`, a hard pipeline barrier.
        """
        self.drain()
        with self._lock.exclusive():
            dead = set(self.blobs.blob_names()) - self._reachable_blobs()
            return self._sweep(dead)

    def _reachable_blobs(self) -> Set[str]:
        """Every blob referenced by any remaining line manifest of any run.

        Scroll sidecars count as roots too: a sweep must never unlink a
        segment or pending blob a continuation would replay from.
        """
        from repro.timemachine.scroll_persistence import sidecar_blobs

        reachable: Set[str] = set()
        runs_root = self.root / "runs"
        if runs_root.is_dir():
            for run_dir in runs_root.iterdir():
                if not run_dir.is_dir():
                    continue
                for manifest_path in self._line_paths(run_dir):
                    manifest = _read_json(manifest_path)
                    if manifest is not None:
                        reachable |= _manifest_blobs(manifest)
                reachable |= sidecar_blobs(_read_json(run_dir / "scroll.json"))
        return reachable

    def _sweep(self, names: Set[str]) -> int:
        """Unlink ``names`` (caller holds the exclusive lock); returns count.

        Swept addresses leave the in-run ``_seen`` cache, so a chunk
        value that recurs after its blob died is re-written rather than
        recorded against a missing file.  Without an advisory lock,
        blobs younger than :data:`GC_GRACE_SECONDS` are skipped —
        another process may be mid-flush, blobs written but manifest
        not yet landed.
        """
        freed = 0
        grace = None if self._lock.available else GC_GRACE_SECONDS
        for name in names:
            self._seen.discard(name)
            if grace is not None:
                try:
                    if time.time() - self.blobs._path(name).stat().st_mtime < grace:
                        continue
                except OSError:
                    continue
            if self.blobs.delete(name):
                freed += 1
        return freed

    # ------------------------------------------------------------------
    # pipelined IO
    # ------------------------------------------------------------------
    def _submit(self, job, cost: int) -> None:
        """Run ``job`` inline (sync mode) or enqueue it (pipelined mode)."""
        if self.pipeline is None:
            job()
        else:
            self.pipeline.submit(job, cost)

    def drain(self) -> None:
        """Hard barrier: every queued flush is durable when this returns.

        Re-raises the first error a background flush hit.  A no-op in
        sync mode, so callers never need to know which mode they run in.
        """
        if self.pipeline is not None:
            self.pipeline.drain()

    def close(self) -> None:
        """Drain and stop the background writer (idempotent)."""
        if self.pipeline is not None:
            self.pipeline.close()

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Store counters for Outcome reports and benchmarks.

        Reading stats is itself a pipeline barrier: the numbers describe
        a store whose queued flushes have all landed.
        """
        self.drain()
        persistence = self._scroll_persistence
        counters = {
            "lines_committed": self.lines_committed,
            "chunks_written": self.chunks_written,
            "chunks_deduped": self.chunks_deduped,
            "chunks_reused": self.chunks_reused,
            "chunks_cached": self.chunks_cached,
            "logical_bytes": self.logical_bytes,
            "commit_pickled_bytes": self.commit_pickled_bytes,
            "commit_hashed_bytes": self.commit_hashed_bytes,
            "scroll_flushes": persistence.flushes if persistence else 0,
            "scroll_bytes": persistence.segment_bytes if persistence else 0,
            "bytes_on_disk": self.blobs.bytes_on_disk(),
        }
        if self.pipeline is not None:
            pipe = self.pipeline.stats()
            counters["flush_jobs"] = int(pipe["jobs_completed"])
            counters["flush_stall_us"] = int(pipe["enqueue_stall_s"] * 1e6)
            counters["flush_peak_queue_bytes"] = int(pipe["peak_queue_bytes"])
        return counters

    # ------------------------------------------------------------------
    # read path (classmethods: resume runs without the writing process)
    # ------------------------------------------------------------------
    @staticmethod
    def _line_paths(run_dir: Path) -> List[Path]:
        return sorted(run_dir.glob("line-*.json"))

    def _highest_line_index(self) -> int:
        paths = self._line_paths(self.run_dir)
        if not paths:
            return 0
        manifest = _read_json(paths[-1])
        if manifest is not None and isinstance(manifest.get("index"), int):
            return manifest["index"]
        return len(paths)

    @classmethod
    def run_ids(cls, root) -> List[str]:
        runs_root = Path(root) / "runs"
        if not runs_root.is_dir():
            return []
        return sorted(entry.name for entry in runs_root.iterdir() if entry.is_dir())

    @classmethod
    def resolve_run_id(cls, root, ref: str) -> str:
        """Resolve ``ref`` — an exact run id *or* a scenario name — to a run id.

        Run ids carry a unique per-execution suffix, so callers coming
        back after a crash usually hold the scenario name instead.  An
        exact ``runs/<ref>`` directory wins; otherwise the run whose
        recorded scenario name equals ``ref`` and whose committed
        activity is most recent is chosen.  Raises
        :class:`~repro.errors.CheckpointError` when nothing matches.
        """
        root = Path(root)
        if (root / "runs" / ref).is_dir():
            return ref
        best: Optional[Tuple[float, str]] = None
        runs_root = root / "runs"
        if runs_root.is_dir():
            for run_dir in runs_root.iterdir():
                if not run_dir.is_dir():
                    continue
                metadata = _read_json(run_dir / "run.json")
                scenario = (metadata or {}).get("scenario") or {}
                if scenario.get("name") != ref:
                    continue
                paths = cls._line_paths(run_dir) or [run_dir / "run.json"]
                try:
                    activity = max(path.stat().st_mtime for path in paths)
                except OSError:
                    continue
                if best is None or (activity, run_dir.name) > best:
                    best = (activity, run_dir.name)
        if best is None:
            raise CheckpointError(
                f"no durable run matching {ref!r} under {str(root)!r} "
                f"(known runs: {cls.run_ids(root)})"
            )
        return best[1]

    @classmethod
    def run_metadata(cls, root, run_id: str) -> Dict[str, Any]:
        path = Path(root) / "runs" / run_id / "run.json"
        metadata = _read_json(path)
        if metadata is None:
            raise CheckpointError(
                f"run {run_id!r} has no readable run.json under {str(root)!r}"
            )
        return metadata

    @classmethod
    def last_line_manifest(cls, root, run_id: str) -> Dict[str, Any]:
        """The newest committed line manifest of ``run_id`` (raises when none)."""
        run_dir = Path(root) / "runs" / run_id
        if not run_dir.is_dir():
            raise CheckpointError(f"no durable run {run_id!r} under {str(root)!r}")
        for path in reversed(cls._line_paths(run_dir)):
            manifest = _read_json(path)
            if manifest is not None:
                return migrate_manifest(manifest)
        raise CheckpointError(
            f"run {run_id!r} has no committed recovery lines to resume from"
        )

    @classmethod
    def restore_line(cls, root, run_id: str) -> Tuple[Dict[str, Any], Dict[str, ProcessCheckpoint]]:
        """Rebuild the newest committed line's checkpoints from disk.

        Every referenced blob is read through the validating
        :meth:`BlobStore.get`, so corrupt bytes raise instead of
        restoring garbage.  Returns ``(manifest, {pid: ProcessCheckpoint})``.
        """
        manifest = cls.last_line_manifest(root, run_id)
        blobs = BlobStore(root)
        checkpoints: Dict[str, ProcessCheckpoint] = {}
        for pid, entry in manifest.get("checkpoints", {}).items():
            state: Dict[str, Any] = {}
            for key, layout in entry.get("state", {}).items():
                chunks = [pickle.loads(blobs.get(name)) for name in layout.get("chunks", ())]
                if layout.get("kind", "whole") == "whole":
                    state[key] = chunks[0] if chunks else None
                    continue
                order_keys: List[Any] = []
                for name in layout.get("order", ()):
                    order_keys.extend(pickle.loads(blobs.get(name)))
                state[key] = assemble_chunked(layout["kind"], chunks, order_keys)
            checkpoints[pid] = ProcessCheckpoint(
                pid=pid,
                sequence=entry["sequence"],
                time=entry["time"],
                state=state,
                vt=VectorTimestamp.from_mapping(entry.get("vt", {})),
                lamport=entry.get("lamport", 0),
                rng_draws=entry.get("rng_draws", 0),
                sent_count=entry.get("sent_count", 0),
                received_count=entry.get("received_count", 0),
                extra=dict(entry.get("extra", {})),
            )
        return manifest, checkpoints


def _read_json(path: Path) -> Optional[Dict[str, Any]]:
    """Parse a manifest, returning None for missing files (atomic writes mean
    a manifest that exists is whole, but the caller may race a rotation)."""
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (FileNotFoundError, json.JSONDecodeError):
        return None
