"""Checkpoint storage: per-process checkpoint logs and global checkpoints."""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

from repro.dsim.process import ProcessCheckpoint
from repro.errors import CheckpointError


def stamped_scroll_position(checkpoints: Iterable[ProcessCheckpoint]) -> Optional[int]:
    """Earliest Scroll position stamped on a set of checkpoints.

    Checkpoints captured while a Scroll was recording carry the log's
    end position (``extra["scroll_position"]``); a consistent set is
    safe to truncate the log to the *minimum* of those positions — the
    prefix every member agrees happened.  ``None`` when the set is
    empty or any member lacks the stamp (truncating on a guess could
    discard entries a stampless process still depends on).
    """
    positions = [checkpoint.extra.get("scroll_position") for checkpoint in checkpoints]
    if not positions or any(position is None for position in positions):
        return None
    return min(positions)


class LocalCheckpointLog:
    """The ordered history of one process's local checkpoints.

    Checkpoints are kept in capture order; ``sequence`` numbers come from
    the process itself and are strictly increasing.  The log can be
    truncated from the front (garbage collection after a committed
    recovery line) or from the back (discarding checkpoints that are in
    the future of a rollback).
    """

    def __init__(self, pid: str, capacity: Optional[int] = None) -> None:
        self.pid = pid
        self.capacity = capacity
        self._checkpoints: List[ProcessCheckpoint] = []

    def add(self, checkpoint: ProcessCheckpoint) -> ProcessCheckpoint:
        """Append a checkpoint, keeping log sequence numbers monotone.

        A process that was restarted or dynamically updated starts
        counting its checkpoints from scratch; the log re-sequences such
        checkpoints so the history stays totally ordered.
        """
        if checkpoint.pid != self.pid:
            raise CheckpointError(
                f"checkpoint for {checkpoint.pid!r} added to the log of {self.pid!r}"
            )
        if self._checkpoints and checkpoint.sequence <= self._checkpoints[-1].sequence:
            checkpoint.sequence = self._checkpoints[-1].sequence + 1
        self._checkpoints.append(checkpoint)
        if self.capacity is not None and len(self._checkpoints) > self.capacity:
            self._checkpoints.pop(0)
        return checkpoint

    def __len__(self) -> int:
        return len(self._checkpoints)

    def __iter__(self) -> Iterator[ProcessCheckpoint]:
        return iter(self._checkpoints)

    @property
    def latest(self) -> Optional[ProcessCheckpoint]:
        return self._checkpoints[-1] if self._checkpoints else None

    @property
    def earliest(self) -> Optional[ProcessCheckpoint]:
        return self._checkpoints[0] if self._checkpoints else None

    def all(self) -> List[ProcessCheckpoint]:
        return list(self._checkpoints)

    def by_sequence(self, sequence: int) -> ProcessCheckpoint:
        # add() keeps sequences strictly increasing, so the log bisects.
        index = bisect_left(self._checkpoints, sequence, key=lambda c: c.sequence)
        if index < len(self._checkpoints) and self._checkpoints[index].sequence == sequence:
            return self._checkpoints[index]
        raise CheckpointError(f"no checkpoint with sequence {sequence} for process {self.pid!r}")

    def latest_before(self, time: float) -> Optional[ProcessCheckpoint]:
        """The most recent checkpoint captured at or before ``time``."""
        # Scan from the newest end: recovery lines sit near the tail, so
        # the common case returns after a few steps instead of copying
        # every matching checkpoint.
        for checkpoint in reversed(self._checkpoints):
            if checkpoint.time <= time:
                return checkpoint
        return None

    def drop_after(self, sequence: int) -> int:
        """Discard checkpoints with a sequence strictly greater than ``sequence``."""
        before = len(self._checkpoints)
        self._checkpoints = [c for c in self._checkpoints if c.sequence <= sequence]
        return before - len(self._checkpoints)

    def drop_before(self, sequence: int) -> int:
        """Garbage-collect checkpoints with a sequence strictly smaller than ``sequence``."""
        before = len(self._checkpoints)
        self._checkpoints = [c for c in self._checkpoints if c.sequence >= sequence]
        return before - len(self._checkpoints)

    def total_bytes(self) -> int:
        """Approximate storage cost of the whole log."""
        return sum(checkpoint.size_bytes() for checkpoint in self._checkpoints)


@dataclass
class GlobalCheckpoint:
    """One checkpoint per process, claimed to be globally consistent.

    The Investigator is fed one of these (assembled by the fault-response
    protocol of Figure 4); :func:`repro.timemachine.recovery_line.is_consistent`
    is the check that the claim actually holds.
    """

    checkpoints: Dict[str, ProcessCheckpoint] = field(default_factory=dict)
    label: str = ""

    def add(self, checkpoint: ProcessCheckpoint) -> None:
        self.checkpoints[checkpoint.pid] = checkpoint

    def pids(self) -> List[str]:
        return sorted(self.checkpoints)

    def __contains__(self, pid: str) -> bool:
        return pid in self.checkpoints

    def __getitem__(self, pid: str) -> ProcessCheckpoint:
        return self.checkpoints[pid]

    def total_bytes(self) -> int:
        return sum(checkpoint.size_bytes() for checkpoint in self.checkpoints.values())

    def max_time(self) -> float:
        """Latest capture time among the member checkpoints."""
        return max((c.time for c in self.checkpoints.values()), default=0.0)

    def min_time(self) -> float:
        """Earliest capture time among the member checkpoints."""
        return min((c.time for c in self.checkpoints.values()), default=0.0)

    def scroll_position(self) -> Optional[int]:
        """Earliest Scroll position stamped on the member checkpoints
        (see :func:`stamped_scroll_position`)."""
        return stamped_scroll_position(self.checkpoints.values())


class CheckpointStore:
    """All local checkpoint logs of a running system, keyed by process id."""

    def __init__(self, capacity_per_process: Optional[int] = None) -> None:
        self.capacity_per_process = capacity_per_process
        self._logs: Dict[str, LocalCheckpointLog] = {}

    def log_for(self, pid: str) -> LocalCheckpointLog:
        """The checkpoint log of ``pid`` (created on first use)."""
        if pid not in self._logs:
            self._logs[pid] = LocalCheckpointLog(pid, self.capacity_per_process)
        return self._logs[pid]

    def add(self, checkpoint: ProcessCheckpoint) -> ProcessCheckpoint:
        return self.log_for(checkpoint.pid).add(checkpoint)

    def pids(self) -> List[str]:
        return sorted(self._logs)

    def latest(self, pid: str) -> Optional[ProcessCheckpoint]:
        return self.log_for(pid).latest

    def latest_global(self, label: str = "latest") -> GlobalCheckpoint:
        """The newest checkpoint of every process, bundled (not necessarily consistent)."""
        bundle = GlobalCheckpoint(label=label)
        for pid in self.pids():
            latest = self.latest(pid)
            if latest is None:
                raise CheckpointError(f"process {pid!r} has no checkpoints yet")
            bundle.add(latest)
        return bundle

    def checkpoint_counts(self) -> Dict[str, int]:
        return {pid: len(log) for pid, log in self._logs.items()}

    def total_checkpoints(self) -> int:
        return sum(len(log) for log in self._logs.values())

    def total_bytes(self) -> int:
        return sum(log.total_bytes() for log in self._logs.values())

    def clear(self) -> None:
        self._logs.clear()
