"""Distributed speculations (paper Section 4.2, after Ţăpuş's PhD work).

A *speculation* is a computation based on an assumption whose
verification proceeds in parallel with the computation.  Starting a
speculation takes a lightweight checkpoint of the initiating process; if
the assumption is later *committed* the checkpoint is discarded, and if
it is *aborted* the process rolls back to the checkpoint and may continue
on an alternate execution path.

The distributed part is *absorption*: a process that receives a message
sent from inside a speculation becomes part of that speculation (it takes
its own checkpoint at absorption time) and must roll back together with
the initiator if the speculation aborts.  This is exactly the
communication-induced checkpointing of Figure 6, with the speculation id
playing the role of the dependency tracking.

The manager below implements speculations as a runtime hook plus an
explicit API:

* ``begin(pid, assumption)`` — start a speculation at a process;
* message taint — every message sent by a process inside active
  speculations carries those ids (tracked manager-side, keyed by message
  id, so application messages stay immutable);
* absorption — delivering a tainted message checkpoints and absorbs the
  receiver;
* ``commit(spec_id)`` / ``abort(spec_id)`` — resolve the assumption;
  abort rolls back every absorbed process via the cluster and invokes the
  optional alternate-path callback registered at ``begin``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Optional, Set

from repro.dsim.hooks import RuntimeHook
from repro.dsim.process import ProcessCheckpoint
from repro.errors import SpeculationError
from repro.timemachine.checkpoint import CheckpointStore
from repro.timemachine.cow import CowCheckpoint, CowPageStore


class SpeculationStatus(Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


_speculation_counter = itertools.count(1)


@dataclass
class Speculation:
    """One speculation: its assumption, members and their rollback targets."""

    spec_id: str
    initiator: str
    assumption: str
    started_at: float
    status: SpeculationStatus = SpeculationStatus.ACTIVE
    members: Set[str] = field(default_factory=set)
    checkpoints: Dict[str, ProcessCheckpoint] = field(default_factory=dict)
    #: the incremental COW checkpoint each member took on entry (when a
    #: CowPageStore is attached); released when the speculation resolves
    cow_checkpoints: Dict[str, CowCheckpoint] = field(default_factory=dict)
    alternate_path: Optional[Callable[[str], None]] = None
    resolved_at: Optional[float] = None

    @property
    def active(self) -> bool:
        return self.status is SpeculationStatus.ACTIVE

    def describe(self) -> str:
        members = ", ".join(sorted(self.members))
        return (
            f"speculation {self.spec_id} ({self.status.value}) initiated by {self.initiator}: "
            f"{self.assumption!r}; members: {members}"
        )


class SpeculationManager(RuntimeHook):
    """Tracks speculations, taint propagation, absorption and rollback."""

    def __init__(
        self,
        store: Optional[CheckpointStore] = None,
        cow_store: Optional[CowPageStore] = None,
    ) -> None:
        self.store = store if store is not None else CheckpointStore()
        self.cow_store = cow_store
        self._cluster = None
        self._speculations: Dict[str, Speculation] = {}
        #: speculation ids each process is currently inside
        self._active_by_pid: Dict[str, Set[str]] = {}
        #: taint recorded per message id at send time
        self._message_taint: Dict[int, Set[str]] = {}
        self.rollbacks_performed = 0
        self.absorptions = 0
        #: pages released by incremental COW garbage collection on resolve
        self.cow_pages_freed = 0

    def attach(self, cluster) -> None:
        self._cluster = cluster

    # ------------------------------------------------------------------
    # lifecycle API
    # ------------------------------------------------------------------
    def begin(
        self,
        pid: str,
        assumption: str,
        alternate_path: Optional[Callable[[str], None]] = None,
    ) -> Speculation:
        """Start a speculation at ``pid`` based on ``assumption``."""
        if self._cluster is None:
            raise SpeculationError("speculation manager is not attached to a cluster")
        process = self._cluster.process(pid)
        spec_id = f"spec-{next(_speculation_counter)}"
        checkpoint = process.capture_checkpoint(self._cluster.now)
        self.store.add(checkpoint)
        cow_checkpoints: Dict[str, CowCheckpoint] = {}
        if self.cow_store is not None:
            cow_checkpoints[pid] = self.cow_store.capture(
                pid, process.state, self._cluster.now, speculation=spec_id
            )
        speculation = Speculation(
            spec_id=spec_id,
            initiator=pid,
            assumption=assumption,
            started_at=self._cluster.now,
            members={pid},
            checkpoints={pid: checkpoint},
            cow_checkpoints=cow_checkpoints,
            alternate_path=alternate_path,
        )
        self._speculations[spec_id] = speculation
        self._active_by_pid.setdefault(pid, set()).add(spec_id)
        return speculation

    def commit(self, spec_id: str) -> Speculation:
        """Validate the assumption: discard rollback obligations."""
        speculation = self._get_active(spec_id)
        speculation.status = SpeculationStatus.COMMITTED
        speculation.resolved_at = self._cluster.now if self._cluster else None
        self._retire(speculation)
        return speculation

    def abort(self, spec_id: str) -> Speculation:
        """Invalidate the assumption: roll back every member process.

        Every member is restored to the checkpoint it saved when it
        entered the speculation, in-flight messages destined to members
        are cancelled by the cluster restore, and the alternate execution
        path (if one was registered) is invoked for the initiator so the
        computation can continue down a different branch.
        """
        speculation = self._get_active(spec_id)
        if self._cluster is None:
            raise SpeculationError("speculation manager is not attached to a cluster")
        speculation.status = SpeculationStatus.ABORTED
        speculation.resolved_at = self._cluster.now
        self._cluster.restore_checkpoints(dict(speculation.checkpoints))
        self.rollbacks_performed += 1
        self._retire(speculation)
        if speculation.alternate_path is not None:
            speculation.alternate_path(speculation.initiator)
        return speculation

    def _get_active(self, spec_id: str) -> Speculation:
        speculation = self._speculations.get(spec_id)
        if speculation is None:
            raise SpeculationError(f"unknown speculation {spec_id!r}")
        if not speculation.active:
            raise SpeculationError(
                f"speculation {spec_id!r} is already {speculation.status.value}"
            )
        return speculation

    def _retire(self, speculation: Speculation) -> None:
        for pid in speculation.members:
            active = self._active_by_pid.get(pid)
            if active is not None:
                active.discard(speculation.spec_id)
        self._release_cow_checkpoints(speculation)

    def _release_cow_checkpoints(self, speculation: Speculation) -> None:
        """Discard the resolved speculation's incremental checkpoints.

        Section 4.2: a committed speculation's checkpoint is discarded
        (and an aborted one's has been consumed by the rollback).  Only
        the checkpoints this speculation itself captured are dropped —
        the COW store is shared with the periodic/communication-induced
        policies, whose chains must stay restorable.
        """
        if self.cow_store is None:
            return
        for pid, cow_checkpoint in speculation.cow_checkpoints.items():
            self.cow_pages_freed += self.cow_store.drop_checkpoint(
                pid, cow_checkpoint.sequence
            )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def get(self, spec_id: str) -> Speculation:
        speculation = self._speculations.get(spec_id)
        if speculation is None:
            raise SpeculationError(f"unknown speculation {spec_id!r}")
        return speculation

    def active_for(self, pid: str) -> Set[str]:
        """Ids of the speculations ``pid`` is currently inside."""
        return set(self._active_by_pid.get(pid, set()))

    def all_speculations(self) -> List[Speculation]:
        return list(self._speculations.values())

    def active_speculations(self) -> List[Speculation]:
        return [s for s in self._speculations.values() if s.active]

    # ------------------------------------------------------------------
    # hook notifications: taint propagation and absorption
    # ------------------------------------------------------------------
    def on_send(self, pid, message, time, vt=None):
        active = self._active_by_pid.get(pid)
        if active:
            self._message_taint[message.msg_id] = set(active)

    def before_receive(self, pid, message, time):
        taint = self._message_taint.get(message.msg_id)
        if not taint:
            return
        for spec_id in list(taint):
            speculation = self._speculations.get(spec_id)
            if speculation is None or not speculation.active:
                continue
            if pid in speculation.members:
                continue
            self._absorb(speculation, pid, time)

    def _absorb(self, speculation: Speculation, pid: str, time: float) -> None:
        """Pull ``pid`` into ``speculation``: checkpoint it and register membership."""
        process = self._cluster.process(pid) if self._cluster else None
        if process is None or process.crashed:
            return
        checkpoint = process.capture_checkpoint(time)
        self.store.add(checkpoint)
        if self.cow_store is not None:
            speculation.cow_checkpoints[pid] = self.cow_store.capture(
                pid, process.state, time, speculation=speculation.spec_id
            )
        speculation.members.add(pid)
        speculation.checkpoints[pid] = checkpoint
        self._active_by_pid.setdefault(pid, set()).add(speculation.spec_id)
        self.absorptions += 1

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        by_status = {status.value: 0 for status in SpeculationStatus}
        for speculation in self._speculations.values():
            by_status[speculation.status.value] += 1
        return {
            "total": len(self._speculations),
            "absorptions": self.absorptions,
            "rollbacks": self.rollbacks_performed,
            "cow_pages_freed": self.cow_pages_freed,
            **by_status,
        }
