"""The Time Machine: checkpointing, speculations and distributed rollback.

Paper Sections 3.2 and 4.2 (Figures 2 and 6).  The Time Machine's job is
to take the system back to a *consistent* global state that predates an
invariant violation, so the Investigator can explore alternative
executions and the Healer can resume from useful work instead of
restarting from scratch.

The package provides:

* local checkpoint capture and storage, in two flavours — full deep
  copies (:mod:`repro.timemachine.checkpoint`) and copy-on-write
  incremental checkpoints (:mod:`repro.timemachine.cow`);
* three checkpointing *policies*: communication-induced (the paper's
  choice, driven by speculations), periodic/uncoordinated, and a
  coordinated stop-the-world snapshot standing in for Chandy–Lamport
  (:mod:`repro.timemachine.comm_induced`, :mod:`repro.timemachine.coordinated`);
* distributed speculations with absorption and abort-driven rollback
  (:mod:`repro.timemachine.speculation`);
* safe recovery-line computation over per-process checkpoint histories
  (:mod:`repro.timemachine.recovery_line`);
* the rollback manager and the :class:`~repro.timemachine.time_machine.TimeMachine`
  facade that FixD uses.
"""

from repro.timemachine.blobstore import (  # facade-ok
    BlobStore,
    DurableCheckpointStore,
    IntegrityReport,
)
from repro.timemachine.checkpoint import CheckpointStore, GlobalCheckpoint, LocalCheckpointLog
from repro.timemachine.comm_induced import CommunicationInducedCheckpointing, PeriodicCheckpointing
from repro.timemachine.coordinated import CoordinatedSnapshotter
from repro.timemachine.cow import CowCheckpoint, CowPageStore
from repro.timemachine.flush_pipeline import (  # facade-ok
    DEFAULT_FLUSH_QUEUE_BYTES,
    FlushPipeline,
)
from repro.timemachine.recovery_line import RecoveryLine, compute_recovery_line, is_consistent
from repro.timemachine.rollback import RollbackManager, RollbackResult
from repro.timemachine.speculation import Speculation, SpeculationManager, SpeculationStatus
from repro.timemachine.time_machine import CheckpointPolicy, TimeMachine

__all__ = [
    "BlobStore",
    "DurableCheckpointStore",
    "IntegrityReport",
    "CheckpointStore",
    "GlobalCheckpoint",
    "LocalCheckpointLog",
    "CommunicationInducedCheckpointing",
    "PeriodicCheckpointing",
    "CoordinatedSnapshotter",
    "CowCheckpoint",
    "CowPageStore",
    "DEFAULT_FLUSH_QUEUE_BYTES",
    "FlushPipeline",
    "RecoveryLine",
    "compute_recovery_line",
    "is_consistent",
    "RollbackManager",
    "RollbackResult",
    "Speculation",
    "SpeculationManager",
    "SpeculationStatus",
    "CheckpointPolicy",
    "TimeMachine",
]
