"""Durable Scroll persistence: segment blobs + a per-run sidecar manifest.

The durable checkpoint store (:mod:`repro.timemachine.blobstore`) makes
*state* survive a crash; this module makes the recorded *nondeterminism*
survive alongside it, which is what turns ``Experiment.resume`` from a
quiescent state restore into a **continuation**: the committed line's
checkpoints restore process state, the persisted Scroll window replays
the recorded history forward from the line to the crash point, and the
persisted in-flight events re-arm the scheduler so the run simply keeps
going.

Layout, sharing the blob store's content-addressing:

* each flush appends **one segment blob** covering the Scroll entries
  recorded since the previous flush.  The payload is the same
  self-delimiting pickled-tuple framing the spill tier uses
  (:func:`repro.scroll.storage.encode_segment`), stored under its
  SHA-256 address — identical windows across twin runs dedup to one
  file, and reads validate integrity like any other blob;
* the scheduler's in-flight deliveries and timers are captured as **one
  pickled pending blob** per flush (the newest wins — pending events
  are a snapshot, not a log);
* a per-run **sidecar manifest** (``runs/<run_id>/scroll.json``,
  atomically rewritten last, under the store's shared flush lock)
  names the live segments in order, the pending blob, and the counter
  frontiers (next Scroll entry ``seq``, next message id) a continuation
  must rebase past so its new history never collides with the persisted
  one.

A flush is segment-granular, not per-entry: callers flush on line
commits and on an entry-count threshold between commits, so the durable
log trails the hot log by at most one window.  A crash mid-flush leaves
the previous sidecar as the newest readable one — blobs land first,
the sidecar rename is last — so a rebuilt Scroll never contains a torn
suffix.

Committing a recovery line prunes: segments entirely below the
committed position are dropped from the sidecar (their blobs become
GC candidates once unreferenced), mirroring the hot Scroll's
``collect``.  The rebuilt Scroll is therefore *based* at the first kept
segment's position — positions stay global, exactly as in the live run.
"""

from __future__ import annotations

import json
import pickle
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.errors import CheckpointError
from repro.scroll.entry import ActionKind, ScrollEntry
from repro.scroll.scroll import Scroll
from repro.scroll.storage import decode_segment, encode_segment

#: sidecar manifest schema; bump with a migration when the shape changes
SCROLL_SIDECAR_SCHEMA = 1

_MESSAGE_KINDS = (ActionKind.SEND, ActionKind.RECEIVE, ActionKind.DUPLICATE)


def _max_msg_id(entries) -> int:
    """Largest message id appearing in ``entries`` (0 when none)."""
    highest = 0
    for entry in entries:
        if entry.kind in _MESSAGE_KINDS:
            record = entry.detail.get("message") or {}
            msg_id = record.get("msg_id")
            if isinstance(msg_id, int):
                highest = max(highest, msg_id)
            duplicate_of = record.get("duplicate_of")
            if isinstance(duplicate_of, int):
                highest = max(highest, duplicate_of)
    return highest


class ScrollPersistence:
    """Flushes a live Scroll's tail into a durable store, incrementally.

    Instances are owned by a :class:`DurableCheckpointStore` (one per
    run) and share its blob store, run directory and flush lock; the
    classmethod read path rebuilds without a live instance, which is
    what resume uses.
    """

    def __init__(self, store) -> None:
        self._store = store
        self._blobs = store.blobs
        self._lock = store._lock
        self.run_id = store.run_id
        self.sidecar_path = store.run_dir / "scroll.json"
        self._segments: List[Dict[str, Any]] = []
        self._flushed_end = 0
        self._seq_max = 0
        self._msg_id_max = 0
        self.flushes = 0
        self.segment_bytes = 0
        existing = _read_sidecar(self.sidecar_path)
        if existing is not None:
            # a continued run picks up where the previous process stopped
            self._segments = list(existing.get("segments", ()))
            self._flushed_end = int(existing.get("position", 0))
            self._seq_max = int(existing.get("seq_next", 1)) - 1
            self._msg_id_max = int(existing.get("msg_id_next", 1)) - 1

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    @property
    def flushed_position(self) -> int:
        """Scroll length already covered by durable segments."""
        return self._flushed_end

    def pending_entries(self, scroll: Scroll) -> int:
        """How many recorded entries are not yet durable."""
        return max(0, len(scroll) - max(self._flushed_end, scroll.collected_base))

    def flush(
        self,
        scroll: Scroll,
        pending: Optional[Dict[str, Any]],
        now: float,
        committed_position: Optional[int] = None,
    ) -> Dict[str, int]:
        """Make the Scroll tail since the last flush durable.

        Appends one segment blob for ``[flushed_end, len(scroll))``,
        stores ``pending`` (the scheduler's in-flight snapshot) as one
        pickled blob, prunes segments below ``committed_position`` when
        given, and atomically rewrites the sidecar — blobs first,
        sidecar last, under the store's shared lock, so a crash at any
        point leaves a consistent (at worst slightly stale) durable log.

        The live Scroll is read on the caller's (hot) path: the tail
        slice and the in-flight snapshot are captured at the same
        instant, so a continuation can never see recorded history past
        its pending snapshot.  In pipelined mode only the encoding, blob
        puts and sidecar rename run on the background writer — queued
        after the line flush they belong to, so the sidecar can never
        prune a replay window before the manifest referencing it is
        durable.
        """
        counters = {"segments_written": 0, "entries_flushed": 0, "segment_bytes": 0}
        start = max(self._flushed_end, scroll.collected_base)
        end = len(scroll)
        entries = scroll.entries_between(start, end) if end > start else []
        self._flushed_end = max(self._flushed_end, end)
        frontier = self._flushed_end
        now = float(now)

        def job() -> None:
            with self._lock.shared():
                self._write_flush(
                    entries, start, frontier, pending, now, committed_position, counters
                )
            self.flushes += 1

        # the retained payload is the entry list plus the pending snapshot;
        # a rough per-entry estimate is plenty for queue backpressure
        self._store._submit(job, cost=len(entries) * 256)
        return counters

    def _write_flush(
        self,
        entries: List[ScrollEntry],
        start: int,
        frontier: int,
        pending: Optional[Dict[str, Any]],
        now: float,
        committed_position: Optional[int],
        counters: Dict[str, int],
    ) -> None:
        if entries:
            blob = encode_segment(entries)
            name, _ = self._blobs.put(blob)
            self._segments.append({"first": start, "count": len(entries), "blob": name})
            self._seq_max = max(self._seq_max, max(entry.seq for entry in entries))
            self._msg_id_max = max(self._msg_id_max, _max_msg_id(entries))
            counters["segments_written"] = 1
            counters["entries_flushed"] = len(entries)
            counters["segment_bytes"] = len(blob)
            self.segment_bytes += len(blob)
        if committed_position is not None:
            self._segments = [
                segment
                for segment in self._segments
                if segment["first"] + segment["count"] > committed_position
            ]
        pending_name: Optional[str] = None
        if pending is not None:
            deliveries = pending.get("deliveries", ())
            self._msg_id_max = max(
                self._msg_id_max,
                max(
                    (record.get("msg_id", 0) for _, record in deliveries),
                    default=0,
                ),
            )
            pending_blob = pickle.dumps(pending, protocol=pickle.HIGHEST_PROTOCOL)
            pending_name, _ = self._blobs.put(pending_blob)
            counters["segment_bytes"] += len(pending_blob)
            self.segment_bytes += len(pending_blob)
        start_position = self._segments[0]["first"] if self._segments else frontier
        sidecar = {
            "schema": SCROLL_SIDECAR_SCHEMA,
            "run_id": self.run_id,
            "flush_time": now,
            "position": frontier,
            "start": start_position,
            "seq_next": self._seq_max + 1,
            "msg_id_next": self._msg_id_max + 1,
            "segments": self._segments,
            "pending": pending_name,
        }
        _atomic_write_json(self.sidecar_path, sidecar)

    def referenced_blobs(self) -> Set[str]:
        """Blob addresses the current sidecar keeps reachable."""
        return sidecar_blobs(_read_sidecar(self.sidecar_path))

    # ------------------------------------------------------------------
    # read path (resume runs without the writing process)
    # ------------------------------------------------------------------
    @classmethod
    def load_sidecar(cls, root, run_id: str) -> Optional[Dict[str, Any]]:
        """The run's scroll sidecar, or None when the run never flushed one."""
        return _read_sidecar(Path(root) / "runs" / run_id / "scroll.json")

    @classmethod
    def rebuild(
        cls, root, run_id: str
    ) -> Tuple[Scroll, Dict[str, Any], Optional[Dict[str, Any]]]:
        """Rebuild ``(scroll, sidecar, pending)`` from the durable store.

        Every segment and the pending snapshot are read through the
        validating blob store, so corrupt bytes raise
        :class:`~repro.errors.BlobIntegrityError` instead of silently
        replaying garbage.  The Scroll is based at the sidecar's
        ``start`` so positions match the original run's global numbering.
        """
        sidecar = cls.load_sidecar(root, run_id)
        if sidecar is None:
            raise CheckpointError(
                f"run {run_id!r} has no persisted Scroll under {str(root)!r} "
                "(the run predates scroll persistence or never flushed)"
            )
        schema = sidecar.get("schema", 1)
        if schema > SCROLL_SIDECAR_SCHEMA:
            raise CheckpointError(
                f"scroll sidecar schema {schema} is newer than supported "
                f"({SCROLL_SIDECAR_SCHEMA}); upgrade before resuming"
            )
        from repro.timemachine.blobstore import BlobStore

        blobs = BlobStore(root)
        entries: List[ScrollEntry] = []
        expected = sidecar.get("start", 0)
        for segment in sidecar.get("segments", ()):
            first = int(segment["first"])
            if first != expected:
                raise CheckpointError(
                    f"scroll sidecar of run {run_id!r} is not contiguous: "
                    f"segment starts at {first}, expected {expected}"
                )
            decoded = decode_segment(blobs.get(segment["blob"]))
            if len(decoded) != int(segment["count"]):
                raise CheckpointError(
                    f"scroll segment {segment['blob'][:12]}… of run {run_id!r} "
                    f"decoded {len(decoded)} entries, manifest says {segment['count']}"
                )
            entries.extend(decoded)
            expected = first + len(decoded)
        scroll = Scroll(entries, base=sidecar.get("start", 0))
        pending: Optional[Dict[str, Any]] = None
        if sidecar.get("pending"):
            pending = pickle.loads(blobs.get(sidecar["pending"]))
        return scroll, sidecar, pending


def sidecar_blobs(sidecar: Optional[Dict[str, Any]]) -> Set[str]:
    """Every blob address a scroll sidecar references (for GC reachability)."""
    if sidecar is None:
        return set()
    names: Set[str] = set()
    for segment in sidecar.get("segments", ()):
        blob = segment.get("blob")
        if blob:
            names.add(blob)
    if sidecar.get("pending"):
        names.add(sidecar["pending"])
    return names


def capture_pending(backend) -> Optional[Dict[str, Any]]:
    """Snapshot a backend's in-flight deliveries and timers for persistence.

    Only DELIVER and TIMER events are captured: fault events (crash,
    recover, corrupt) are re-armed from the scenario's remaining fault
    schedule on continuation, not replayed from the scheduler.  Returns
    None for backends without an inspectable scheduler (e.g. the
    multiprocessing backend), in which case resume degrades to
    replay-without-pending.

    The snapshot also carries the continuation-fidelity state that is
    neither checkpointed process state nor recorded history:

    * ``fault_hits`` — the message-fault engine's per-rule hit counters,
      so count-limited drop/duplicate/delay rules re-arm with their
      remaining budget instead of restarting from zero;
    * ``channels`` — each created channel's RNG draw position and FIFO
      delivery watermark, so non-default ``ChannelConfig``s draw exactly
      the jitter/loss sequence the uninterrupted run would have.

    Everything captured here is a fresh plain-data copy taken at the
    caller's instant — safe to hand to the background flush pipeline.
    """
    scheduler = getattr(backend, "_scheduler", None)
    if scheduler is None:
        return None
    from repro.dsim.scheduler import EventKind

    deliveries = [
        (event.time, event.payload.to_record())
        for event in scheduler.pending(EventKind.DELIVER)
    ]
    timers = [
        (event.time, event.target, event.payload[0], event.payload[1])
        for event in scheduler.pending(EventKind.TIMER)
    ]
    snapshot: Dict[str, Any] = {"deliveries": deliveries, "timers": timers}
    engine = getattr(backend, "fault_engine", None)
    if engine is not None:
        snapshot["fault_hits"] = engine.hit_counts()
    network = getattr(backend, "_network", None)
    if network is not None:
        channels = network.channel_states()
        if channels:
            snapshot["channels"] = channels
    return snapshot


def _atomic_write_json(path: Path, document: Dict[str, Any]) -> None:
    from repro.timemachine.blobstore import _atomic_write

    _atomic_write(
        path, (json.dumps(document, sort_keys=True, indent=2) + "\n").encode("utf-8")
    )


def _read_sidecar(path: Path) -> Optional[Dict[str, Any]]:
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (FileNotFoundError, json.JSONDecodeError):
        return None
