"""The fault-response protocol of Figure 4.

When a process detects a fault:

1. it uses the Time Machine to roll its own state back to a recent
   checkpoint;
2. it notifies every other process that an error occurred;
3. each notified process replies with (a) a local checkpoint that
   satisfies global consistency and (b) a model of its behaviour — which
   may simply be its implementation;
4. the detecting process assembles the replies into a consistent global
   checkpoint and hands it, together with the models, to the
   Investigator.

In this reproduction the coordinator runs inside the FixD controller
rather than as application-level messages (the control plane is out of
band, like liblog's and Flashback's control channels), but each step is
materialised explicitly so its cost can be measured and its artefacts
inspected: notifications, per-peer responses, the consistency check on
the assembled checkpoint, and the set of environment components that had
to be modelled internally because they are outside FixD's control.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.events import FaultEvent
from repro.dsim.message import Message
from repro.dsim.process import Process, ProcessCheckpoint
from repro.errors import RecoveryLineError
from repro.investigator.models import EnvironmentModel
from repro.scroll.entry import ActionKind
from repro.scroll.scroll import Scroll
from repro.timemachine.checkpoint import GlobalCheckpoint
from repro.timemachine.recovery_line import RecoveryLine, is_consistent
from repro.timemachine.time_machine import TimeMachine

ProcessFactory = Callable[[], Process]


def reconstruct_in_flight(scroll: Scroll, line: RecoveryLine) -> List[Message]:
    """Reconstruct the channel state at a recovery line from the Scroll.

    A message is *in flight* at the line when its send is part of the
    restored past (the sender's component of the send timestamp does not
    exceed the sender's checkpoint) but its receipt is not (the receiver
    either never received it or received it after its checkpoint).  These
    are exactly the messages the Investigator must be allowed to deliver
    when exploring executions from the restored global state.
    """
    receives_by_id = {}
    for entry in scroll.of_kind(ActionKind.RECEIVE):
        message = entry.detail.get("message")
        if message and "msg_id" in message:
            receives_by_id[message["msg_id"]] = entry

    in_flight: List[Message] = []
    for entry in scroll.of_kind(ActionKind.SEND):
        record = entry.detail.get("message")
        if not record or "msg_id" not in record:
            continue
        src, dst = record.get("src"), record.get("dst")
        if src not in line.checkpoints or dst not in line.checkpoints:
            continue
        send_component = int(record.get("vt", {}).get(src, 0))
        if send_component > line.checkpoints[src].vt.component(src):
            continue  # the send itself was rolled back
        receive_entry = receives_by_id.get(record["msg_id"])
        if receive_entry is not None and receive_entry.vt is not None:
            received_component = receive_entry.vt.component(dst)
            if received_component <= line.checkpoints[dst].vt.component(dst):
                continue  # the receipt is already reflected in the restored state
        in_flight.append(Message.from_record(dict(record)))
    return in_flight


@dataclass
class PeerResponse:
    """One peer's reply to a fault notification: checkpoint + behaviour model."""

    pid: str
    checkpoint: ProcessCheckpoint
    model_factory: ProcessFactory
    is_environment_model: bool = False


@dataclass
class ProtocolRun:
    """Everything the fault-response protocol produced for one fault."""

    fault: FaultEvent
    detecting_pid: str
    notified_pids: List[str]
    responses: Dict[str, PeerResponse]
    global_checkpoint: GlobalCheckpoint
    recovery_line: RecoveryLine
    consistent: bool
    modeled_environment: List[str] = field(default_factory=list)
    in_flight: List[Message] = field(default_factory=list)

    @property
    def model_factories(self) -> Dict[str, ProcessFactory]:
        return {pid: response.model_factory for pid, response in self.responses.items()}


class FaultResponseCoordinator:
    """Implements the Figure 4 exchange on top of the Time Machine's checkpoints."""

    def __init__(
        self,
        time_machine: TimeMachine,
        model_overrides: Optional[Dict[str, ProcessFactory]] = None,
        environment_models: Optional[Dict[str, ProcessFactory]] = None,
    ) -> None:
        """
        Parameters
        ----------
        time_machine:
            Supplies each peer's local checkpoints and the recovery-line
            computation that makes the assembled checkpoint consistent.
        model_overrides:
            Per-pid replacement model factories.  By default each peer's
            model is its registered implementation class ("the model ...
            could simply be the implementation of the process itself").
        environment_models:
            Models of components outside FixD's control (the local
            environment of Figure 4); these participate in the
            investigation but have no checkpoint of their own.
        """
        self._time_machine = time_machine
        self._model_overrides = dict(model_overrides or {})
        self._environment_models = dict(environment_models or {})

    # ------------------------------------------------------------------
    # protocol execution
    # ------------------------------------------------------------------
    def run(self, cluster, fault: FaultEvent, scroll: Optional[Scroll] = None) -> ProtocolRun:
        """Execute the notify/collect/assemble exchange for ``fault``.

        When a ``scroll`` is supplied, the channel state at the recovery
        line (messages sent in the restored past but not yet received
        there) is reconstructed from it and handed to the Investigator
        along with the checkpoints.
        """
        detecting_pid = fault.pid
        peers = [pid for pid in cluster.pids if pid != detecting_pid]

        # Step 1-2: the detector rolls back and everyone is notified.  The
        # rollback target is the latest consistent recovery line in which the
        # detector's checkpoint predates the fault.
        not_after = {detecting_pid: fault.time}
        try:
            line = self._time_machine.latest_recovery_line(not_after=not_after)
        except RecoveryLineError:
            # No bound-respecting line exists (e.g. the fault hit before any
            # checkpoint): fall back to the unconstrained latest line.
            line = self._time_machine.latest_recovery_line()

        # Step 3: each peer replies with its checkpoint from that line and a
        # model of its behaviour.
        responses: Dict[str, PeerResponse] = {}
        for pid in [detecting_pid, *peers]:
            checkpoint = line.checkpoints.get(pid)
            if checkpoint is None:
                continue
            factory = self._model_factory_for(cluster, pid)
            responses[pid] = PeerResponse(
                pid=pid,
                checkpoint=checkpoint,
                model_factory=factory,
                is_environment_model=pid in self._environment_models,
            )

        # Step 4: assemble the consistent global checkpoint.
        bundle = GlobalCheckpoint(label=f"fault-{fault.sequence}")
        for response in responses.values():
            bundle.add(response.checkpoint)
        consistent = is_consistent(bundle.checkpoints)

        # Components outside FixD's control are modelled internally.
        modeled_environment = sorted(self._environment_models)
        for pid, factory in self._environment_models.items():
            if pid not in responses:
                responses[pid] = PeerResponse(
                    pid=pid,
                    checkpoint=None,  # type: ignore[arg-type] - no checkpoint for the environment
                    model_factory=factory,
                    is_environment_model=True,
                )

        in_flight = reconstruct_in_flight(scroll, line) if scroll is not None else []

        return ProtocolRun(
            fault=fault,
            detecting_pid=detecting_pid,
            notified_pids=peers,
            responses=responses,
            global_checkpoint=bundle,
            recovery_line=line,
            consistent=consistent,
            modeled_environment=modeled_environment,
            in_flight=in_flight,
        )

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _model_factory_for(self, cluster, pid: str) -> ProcessFactory:
        if pid in self._model_overrides:
            return self._model_overrides[pid]
        if pid in self._environment_models:
            return self._environment_models[pid]
        factory = cluster._factories.get(pid)  # noqa: SLF001 - registered implementation
        if factory is not None:
            return factory
        # The process was registered as an instance; model it as its class.
        return type(cluster.process(pid))

    def register_environment_model(self, name: str, factory: ProcessFactory) -> None:
        """Add a model for a component outside FixD's control."""
        self._environment_models[name] = factory

    def register_model_override(self, pid: str, factory: ProcessFactory) -> None:
        """Use an abstract model instead of the real implementation for ``pid``."""
        self._model_overrides[pid] = factory
