"""Fault detection: turning invariant violations into FixD pipeline triggers.

FixD's replacement for ``printf`` debugging starts here: application
processes declare invariants (via the :func:`repro.dsim.process.invariant`
decorator), the runtime evaluates them after every handler, and this hook
converts failures into :class:`~repro.core.events.FaultEvent` records and
invokes the registered responders (the FixD controller installs itself as
one).

Detection is substrate-independent: on the simulator backend the cluster
frontend checks invariants inline after each handler; on the
multiprocessing backend each worker checks its own process in-process
and ships failures to the parent router, which feeds them through the
same :meth:`on_invariant_violation` hook.  Either way the detector sees
one stream of :class:`FaultEvent` records — what differs per backend is
only what a responder can *do* about them (rollback needs the
checkpoint/rollback capabilities the simulator advertises).
"""

from __future__ import annotations

import itertools
from typing import Callable, List, Optional

from repro.core.events import FaultEvent
from repro.dsim.hooks import RuntimeHook

#: A responder receives the fault event and returns True when it handled the
#: fault (which lets the cluster continue running).
FaultResponder = Callable[[FaultEvent], bool]


class FaultDetector(RuntimeHook):
    """Collects invariant violations and dispatches them to responders."""

    def __init__(self, responders: Optional[List[FaultResponder]] = None) -> None:
        self.responders: List[FaultResponder] = list(responders or [])
        self.faults: List[FaultEvent] = []
        self._sequence = itertools.count(1)
        self._cluster = None

    def attach(self, cluster) -> None:
        self._cluster = cluster

    def add_responder(self, responder: FaultResponder) -> None:
        """Register a responder invoked for every detected fault."""
        self.responders.append(responder)

    # ------------------------------------------------------------------
    # hook notification
    # ------------------------------------------------------------------
    def on_invariant_violation(self, pid, name, detail, time, vt=None):
        event = FaultEvent(
            pid=pid, invariant=name, detail=detail, time=time, sequence=next(self._sequence)
        )
        self.faults.append(event)
        handled = False
        for responder in self.responders:
            try:
                handled = bool(responder(event)) or handled
            except Exception:
                # A crashing responder must not mask the fault or the other
                # responders; FixD treats it as "not handled".
                continue
        return handled

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def fault_count(self) -> int:
        return len(self.faults)

    def faults_for(self, pid: str) -> List[FaultEvent]:
        return [event for event in self.faults if event.pid == pid]

    def first_fault(self) -> Optional[FaultEvent]:
        return self.faults[0] if self.faults else None

    def last_fault(self) -> Optional[FaultEvent]:
        return self.faults[-1] if self.faults else None
