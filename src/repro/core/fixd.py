"""The FixD controller: the end-to-end pipeline of the paper.

:class:`FixD` is the object a developer attaches to a cluster to get the
whole FixD behaviour without touching application code:

* the **Scroll** records every nondeterministic action;
* the **Time Machine** checkpoints transparently (communication-induced
  by default) and can roll the system back to a consistent state;
* the **fault detector** watches the processes' declared invariants;
* on a fault, the **fault-response protocol** (Figure 4) assembles a
  consistent global checkpoint and the peers' models, the
  **Investigator** explores executions from that state and returns
  violating trails, and a **bug report** is produced;
* if the developer has registered a **patch**, the **Healer** applies it
  using the configured recovery strategy (Figure 5) and the run
  continues.

Typical use::

    cluster = Cluster(ClusterConfig(seed=7))
    ... add processes ...
    fixd = FixD()
    fixd.attach(cluster)
    result = cluster.run()
    for report in fixd.reports:
        print(report.bug_report.to_text())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.events import FaultEvent, RecoveryTimeline
from repro.core.faults import FaultDetector
from repro.errors import AttachmentError, RecoveryLineError
from repro.core.protocol import FaultResponseCoordinator, ProtocolRun
from repro.core.registry import CapabilityMatrix, default_matrix
from repro.core.report import BugReport
from repro.dsim.process import Process
from repro.healer.healer import Healer, HealReport
from repro.healer.patch import Patch
from repro.healer.strategies import RecoveryStrategy
from repro.investigator.investigator import InvestigationReport, Investigator, InvestigatorConfig
from repro.dsim.hooks import RuntimeHook
from repro.scroll.interceptor import RecordingPolicy
from repro.scroll.recorder import ScrollRecorder
from repro.timemachine import DEFAULT_FLUSH_QUEUE_BYTES
from repro.timemachine.rollback import RollbackResult
from repro.timemachine.time_machine import CheckpointPolicy, TimeMachine, TimeMachineConfig

ProcessFactory = Callable[[], Process]


@dataclass
class FixDConfig:
    """Behaviour of the FixD controller."""

    #: which execution substrate :meth:`FixD.make_cluster` builds:
    #: ``"sim"`` (deterministic simulator, full pipeline), ``"mp"``
    #: (real OS processes over pipes/shm rings) or ``"net"`` (real OS
    #: processes over sharded socket routers).  On ``mp``/``net`` FixD
    #: degrades to detection + reporting because those backends
    #: advertise no checkpoint/rollback capability.
    backend: str = "sim"
    #: data plane of the ``mp`` backend: ``"pipe"`` (batched pickled
    #: pipe writes) or ``"shm"`` (shared-memory rings; the hot path
    #: never touches pickle).  Ignored on the simulator.
    transport: str = "pipe"
    checkpoint_policy: CheckpointPolicy = CheckpointPolicy.COMMUNICATION_INDUCED
    periodic_checkpoint_interval: int = 10
    recording_policy: RecordingPolicy = field(default_factory=RecordingPolicy)
    investigator: InvestigatorConfig = field(default_factory=InvestigatorConfig)
    investigate_on_fault: bool = True
    auto_rollback: bool = True
    heal_strategy: RecoveryStrategy = RecoveryStrategy.RESUME_FROM_CHECKPOINT
    max_faults_handled: int = 10
    scroll_tail_length: int = 50
    #: After a rollback (and once the bug report's Scroll tail is safely
    #: assembled), truncate the Scroll — both the hot tier and the
    #: spilled segments — to the recovery line's recorded log position,
    #: so the log never describes a future the rolled-back system will
    #: re-execute differently.
    truncate_scroll_on_rollback: bool = False
    #: Every ``auto_commit_interval`` simulated time units, commit the
    #: newest consistent recovery line that is at least one interval old
    #: (:meth:`~repro.timemachine.rollback.RollbackManager.commit`),
    #: garbage-collecting the Scroll segments below it — so a tiered log
    #: stays disk-bounded without manual commit calls.  ``None`` (the
    #: default) keeps the whole log.  Committing is a promise: later
    #: rollbacks cannot reach past a committed line.
    auto_commit_interval: Optional[float] = None
    #: where committed recovery lines live: ``"memory"`` (in-process
    #: only; a crashed experiment loses them) or ``"disk"`` (every
    #: committed line is also flushed to a durable content-addressed
    #: blob store that ``Experiment.resume`` can rebuild a cluster from).
    checkpoint_store: str = "memory"
    #: root directory of the durable store; required for ``"disk"``.
    checkpoint_store_path: Optional[str] = None
    #: manifests of this run are scoped under ``runs/<run_id>/``.
    run_id: str = "run"
    #: keep only the newest N committed lines on disk (None keeps all).
    durable_keep_lines: Optional[int] = None
    #: with a ``"disk"`` store, flush the Scroll tail to a durable
    #: segment once this many recorded entries await durability —
    #: segment-granularity incremental flushing between line commits
    #: (commits always flush regardless).  The flush rides the
    #: auto-committer's ``after_handler``, so it is active whenever
    #: ``auto_commit_interval`` is set.  ``0`` disables the incremental
    #: path (the Scroll still flushes on every commit).
    scroll_flush_entries: int = 256
    #: state containers with at least this many elements are captured
    #: per chunk by the COW store (None disables delta chunking).
    cow_chunk_threshold: Optional[int] = 256
    #: target element count per chunk / hash bucket.
    cow_chunk_elems: int = 32
    #: with a ``"disk"`` store, how committed lines reach the blob store:
    #: ``"sync"`` writes blobs and manifests inline on the commit path;
    #: ``"pipelined"`` snapshots the payload at commit time and moves all
    #: blob IO and fsyncs to a bounded background writer (drained at
    #: rollback, rotation/GC, run end and stats reads, so the crash-window
    #: invariant and resume semantics are unchanged).
    flush_mode: str = "sync"
    #: pipelined mode: queued payload bytes before commits block.
    flush_queue_bytes: int = DEFAULT_FLUSH_QUEUE_BYTES


@dataclass
class FixDReport:
    """Everything FixD produced in response to one fault."""

    fault: FaultEvent
    bug_report: BugReport
    protocol_run: Optional[ProtocolRun] = None
    rollback: Optional[RollbackResult] = None
    investigation: Optional[InvestigationReport] = None
    heal: Optional[HealReport] = None
    handled: bool = False

    @property
    def healed(self) -> bool:
        return self.heal is not None and self.heal.succeeded


class PeriodicLineCommitter(RuntimeHook):
    """Periodically commits an old-enough recovery line (Scroll segment GC).

    Every ``interval`` simulated time units this hook computes the
    newest *consistent* recovery line whose checkpoints are all at
    least ``interval`` old, and commits it through the Time Machine's
    :class:`~repro.timemachine.rollback.RollbackManager` — which
    unlinks the cold Scroll segments below the line's recorded log
    position.  The age bound keeps a healthy margin between the commit
    frontier and where a fault-response rollback would land, since a
    committed line is a hard floor for future rollbacks.
    """

    def __init__(
        self,
        time_machine: TimeMachine,
        interval: float,
        scroll_flush_entries: int = 0,
    ) -> None:
        if interval <= 0:
            raise ValueError("auto_commit_interval must be positive")
        self._time_machine = time_machine
        self.interval = interval
        self.scroll_flush_entries = scroll_flush_entries
        self._last_attempt = 0.0
        self.commits = 0
        self.entries_collected = 0

    def after_handler(self, pid: str, description: str, time: float) -> None:
        if self.scroll_flush_entries:
            # segment-granularity incremental durability between commits
            self._time_machine.rollback_manager.maybe_flush_scroll(
                self.scroll_flush_entries
            )
        if time - self._last_attempt < self.interval:
            return
        self._last_attempt = time
        bound = time - self.interval
        if bound <= 0:
            return
        store = self._time_machine.store
        pids = store.pids()
        if not pids:
            return
        try:
            line = self._time_machine.latest_recovery_line(
                not_after={line_pid: bound for line_pid in pids}
            )
        except RecoveryLineError:
            return  # no old-enough consistent line yet; try next interval
        position = line.scroll_position()
        if position is None:
            return  # nothing stamped to collect against
        manager = self._time_machine.rollback_manager
        committed = manager.committed_lines
        if committed:
            last_position = committed[-1].scroll_position()
            if last_position is not None and position <= last_position:
                return  # would not advance the commit frontier
        self.entries_collected += manager.commit(line)
        self.commits += 1


class FixD:
    """The FixD tool: attach it to a cluster and it takes over fault handling."""

    def __init__(self, config: Optional[FixDConfig] = None, scroll=None) -> None:
        """``scroll`` seeds the recorder with pre-existing history — a
        resumed continuation passes the Scroll rebuilt from the durable
        store so new recording appends past the persisted past."""
        self.config = config or FixDConfig()
        # The recorder builds the Scroll from the recording policy:
        # tiered (spill-to-disk) when the policy sets a hot_window.
        self.recorder = ScrollRecorder(scroll=scroll, policy=self.config.recording_policy)
        self.scroll = self.recorder.scroll
        self.time_machine = TimeMachine(
            TimeMachineConfig(
                policy=self.config.checkpoint_policy,
                periodic_interval=self.config.periodic_checkpoint_interval,
                chunk_threshold=self.config.cow_chunk_threshold,
                chunk_elems=self.config.cow_chunk_elems,
                checkpoint_store=self.config.checkpoint_store,
                store_path=self.config.checkpoint_store_path,
                run_id=self.config.run_id,
                durable_keep_lines=self.config.durable_keep_lines,
                flush_mode=self.config.flush_mode,
                flush_queue_bytes=self.config.flush_queue_bytes,
            )
        )
        self.detector = FaultDetector()
        self.investigator = Investigator(self.config.investigator)
        self.reports: List[FixDReport] = []
        self._cluster = None
        self._can_recover = True
        self._coordinator: Optional[FaultResponseCoordinator] = None
        self._healer: Optional[Healer] = None
        self._patches: List[Patch] = []
        self._model_overrides: Dict[str, ProcessFactory] = {}
        self._environment_models: Dict[str, ProcessFactory] = {}
        self.auto_committer: Optional[PeriodicLineCommitter] = None

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    @staticmethod
    def _backend_capabilities(cluster) -> frozenset:
        backend = getattr(cluster, "backend", None)
        return getattr(backend, "capabilities", frozenset())

    def make_cluster(self, cluster_config=None):
        """Build a cluster on the configured backend with FixD attached.

        The one-call entry point for "run this application under FixD on
        substrate X": ``FixD(FixDConfig(backend="mp")).make_cluster()``
        yields a real-process cluster with recording and detection wired
        up; the default yields the fully recoverable simulator.
        """
        from repro.dsim.cluster import Cluster

        backend = self.config.backend
        if backend == "mp" and self.config.transport != "pipe":
            from repro.dsim.backend import MPBackend

            backend = MPBackend(transport=self.config.transport)
        cluster = Cluster(cluster_config, backend=backend)
        self.attach(cluster)
        return cluster

    def attach(self, cluster) -> "FixD":
        """Install the Scroll recorder, Time Machine, and fault detector on a cluster.

        What attaches depends on the backend's advertised capabilities:
        recording and fault detection are substrate-independent, but the
        Time Machine's checkpoint policies and the Healer need frontend
        access to live process state, which only checkpoint-capable
        backends (the simulator) provide.  On other substrates FixD
        degrades gracefully to detection + bug reporting.

        A FixD instance attaches exactly once: re-attaching would
        install the recorder/detector hooks a second time and duplicate
        the fault responders, so a second call raises
        :class:`~repro.errors.AttachmentError` — build a fresh
        :class:`FixD` per cluster instead.
        """
        if self._cluster is not None:
            raise AttachmentError(
                "this FixD instance is already attached to a cluster; re-attaching "
                "would duplicate its recorder/detector hooks and fault responders. "
                "Create a new FixD (or use FixD.make_cluster exactly once) per run."
            )
        self._cluster = cluster
        capabilities = self._backend_capabilities(cluster)
        cluster.add_hook(self.recorder)
        self._can_recover = "checkpoint" in capabilities and "rollback" in capabilities
        if self._can_recover:
            self.time_machine.attach(cluster)
            self._healer = Healer(cluster, self.time_machine)
            if self.config.auto_commit_interval is not None:
                self.auto_committer = PeriodicLineCommitter(
                    self.time_machine,
                    self.config.auto_commit_interval,
                    scroll_flush_entries=(
                        self.config.scroll_flush_entries
                        if self.config.checkpoint_store == "disk"
                        else 0
                    ),
                )
                cluster.add_hook(self.auto_committer)
        self.detector.add_responder(self._respond_to_fault)
        cluster.add_hook(self.detector)
        self._coordinator = FaultResponseCoordinator(
            self.time_machine,
            model_overrides=self._model_overrides,
            environment_models=self._environment_models,
        )
        return self

    @property
    def cluster(self):
        if self._cluster is None:
            raise RuntimeError("FixD is not attached to a cluster; call attach() first")
        return self._cluster

    # ------------------------------------------------------------------
    # developer-facing registration
    # ------------------------------------------------------------------
    def register_patch(self, patch: Patch) -> None:
        """Register the programmer's fix; it is applied by the Healer on the next fault."""
        self._patches.append(patch)

    def register_model_override(self, pid: str, factory: ProcessFactory) -> None:
        """Use an abstract model instead of the real implementation for ``pid``."""
        self._model_overrides[pid] = factory
        if self._coordinator is not None:
            self._coordinator.register_model_override(pid, factory)

    def register_environment_model(self, name: str, factory: ProcessFactory) -> None:
        """Model a component outside FixD's control (network, external service, ...)."""
        self._environment_models[name] = factory
        if self._coordinator is not None:
            self._coordinator.register_environment_model(name, factory)

    # ------------------------------------------------------------------
    # the pipeline
    # ------------------------------------------------------------------
    def _respond_to_fault(self, fault: FaultEvent) -> bool:
        if self._cluster is None or self._coordinator is None:
            return False
        if len(self.reports) >= self.config.max_faults_handled:
            return False
        if not self._can_recover:
            return self._report_without_recovery(fault)

        timeline = RecoveryTimeline()
        now = self._cluster.now
        timeline.add(now, "detect", fault.describe())

        # Figure 4, steps 1-4: roll back, notify, collect checkpoints + models.
        protocol_run = self._coordinator.run(self._cluster, fault, scroll=self.scroll)
        timeline.add(
            self._cluster.now,
            "collect",
            f"collected {len(protocol_run.responses)} peer responses; "
            f"recovery line consistent: {protocol_run.consistent}; "
            f"{len(protocol_run.in_flight)} message(s) in flight at the line",
        )

        rollback: Optional[RollbackResult] = None
        if self.config.auto_rollback:
            rollback = self.time_machine.rollback_to(protocol_run.recovery_line)
            timeline.add(
                self._cluster.now,
                "rollback",
                f"rolled back {len(rollback.restored_pids)} processes "
                f"(max distance {rollback.max_rollback_distance:.3f})",
            )

        investigation: Optional[InvestigationReport] = None
        if self.config.investigate_on_fault:
            investigation = self.investigator.investigate(
                protocol_run.model_factories,
                checkpoint=protocol_run.global_checkpoint,
                in_flight=protocol_run.in_flight,
            )
            timeline.add(
                self._cluster.now,
                "investigate",
                f"explored {investigation.states_explored} states, "
                f"found {len(investigation.trails)} violating trail(s)",
            )

        bug_report = BugReport(
            fault=fault,
            scroll_tail=BugReport.build_scroll_tail(
                self.scroll, self._cluster.pids, self.config.scroll_tail_length
            ),
            investigation=investigation,
            timeline=timeline,
            recovery_line_times={
                pid: checkpoint.time
                for pid, checkpoint in protocol_run.recovery_line.checkpoints.items()
            },
        )
        timeline.add(self._cluster.now, "report", "bug report assembled")

        heal_report: Optional[HealReport] = None
        if self._patches and self._healer is not None:
            patch = self._patches[-1]
            heal_report = self._healer.heal(
                patch,
                strategy=self.config.heal_strategy,
                recovery_line=protocol_run.recovery_line if self.config.auto_rollback else None,
            )
            bug_report.healed = heal_report.succeeded
            timeline.add(
                self._cluster.now,
                "heal",
                f"patch {patch.name!r} via {heal_report.strategy.value}: "
                + ("succeeded" if heal_report.succeeded else "failed"),
            )

        # Truncation happens last: the bug report above needs the Scroll
        # tail that led to the fault, which truncation discards.
        if rollback is not None and self.config.truncate_scroll_on_rollback:
            truncated = self.time_machine.rollback_manager.truncate_scroll_to(
                protocol_run.recovery_line
            )
            rollback.scroll_entries_truncated = truncated
            timeline.add(
                self._cluster.now,
                "truncate",
                f"discarded {truncated} Scroll entries past the recovery line",
            )

        handled = bool(self.config.auto_rollback or (heal_report and heal_report.succeeded))
        report = FixDReport(
            fault=fault,
            bug_report=bug_report,
            protocol_run=protocol_run,
            rollback=rollback,
            investigation=investigation,
            heal=heal_report,
            handled=handled,
        )
        self.reports.append(report)
        return handled

    def _report_without_recovery(self, fault: FaultEvent) -> bool:
        """Detection + reporting on substrates without checkpoint/rollback.

        Real-process backends detect violations in the workers and feed
        them through the same hook chain, but FixD cannot assemble a
        recovery line there — so the response is the bug-report artefact
        alone: the fault, the Scroll tail that led to it, and a timeline
        stating why recovery was skipped.
        """
        timeline = RecoveryTimeline()
        now = self._cluster.now
        timeline.add(now, "detect", fault.describe())
        bug_report = BugReport(
            fault=fault,
            scroll_tail=BugReport.build_scroll_tail(
                self.scroll, self._cluster.pids, self.config.scroll_tail_length
            ),
            timeline=timeline,
            notes=[
                "recovery skipped: backend "
                f"{getattr(self._cluster.backend, 'name', '?')!r} has no "
                "checkpoint/rollback capability"
            ],
        )
        timeline.add(now, "report", "bug report assembled (detection-only substrate)")
        self.reports.append(FixDReport(fault=fault, bug_report=bug_report, handled=False))
        return False

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------
    @property
    def last_report(self) -> Optional[FixDReport]:
        return self.reports[-1] if self.reports else None

    def capability_matrix(self) -> CapabilityMatrix:
        """The Figure 8 matrix with FixD's row derived from this implementation."""
        return default_matrix()

    def stats(self) -> Dict[str, object]:
        """One-call summary of what FixD recorded, checkpointed and handled."""
        stats: Dict[str, object] = {
            "scroll_entries": len(self.scroll),
            "scroll_storage": self.scroll.storage_stats(),
            "faults_detected": self.detector.fault_count,
            "faults_handled": len(self.reports),
            "time_machine": self.time_machine.stats(),
        }
        if self.auto_committer is not None:
            stats["auto_commits"] = self.auto_committer.commits
            stats["scroll_entries_collected"] = self.auto_committer.entries_collected
        return stats
