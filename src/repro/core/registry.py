"""The Figure 8 capability matrix.

Figure 8 of the paper classifies techniques and tools along five
characteristics — *preventive*, *diagnostic*, *treatment*, *comprehensive*
and *opportunistic* — and shows which of the five underlying mechanisms
(model checking, logging, checkpoint & rollback, dynamic updates,
speculations) each tool composes.

This module reproduces that matrix programmatically.  Technique rows are
declared to match the paper; the FixD row is *derived* from the
components actually implemented in this library (which techniques are
registered), so the fig8 benchmark both prints the paper's table and
checks that the implemented system really provides every column the paper
claims.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class ServiceKind(Enum):
    """The five column headings of Figure 8."""

    PREVENTIVE = "preventive"
    DIAGNOSTIC = "diagnostic"
    TREATMENT = "treatment"
    COMPREHENSIVE = "comprehensive"
    OPPORTUNISTIC = "opportunistic"


class Technique(Enum):
    """The five row mechanisms of Figure 8 (abbreviations as in the paper)."""

    MODEL_CHECKING = "MC"
    LOGGING = "L"
    CHECKPOINT_ROLLBACK = "CR"
    DYNAMIC_UPDATES = "DU"
    SPECULATIONS = "S"


@dataclass(frozen=True)
class ToolCapability:
    """One row of the matrix: a technique or tool and the services it provides."""

    name: str
    kind: str                      # "technique" or "tool"
    services: frozenset
    composed_of: Tuple[Technique, ...] = ()

    def provides(self, service: ServiceKind) -> bool:
        return service in self.services

    def row(self) -> Dict[str, str]:
        """Render the row as the paper does: a check mark or a dash per column."""
        cells = {service.value: ("yes" if self.provides(service) else "-") for service in ServiceKind}
        label = self.name
        if self.composed_of:
            label += " (" + " & ".join(technique.value for technique in self.composed_of) + ")"
        return {"name": label, "kind": self.kind, **cells}


#: The technique rows exactly as printed in Figure 8.
PAPER_TECHNIQUES: Tuple[ToolCapability, ...] = (
    ToolCapability(
        "Model Checking", "technique",
        frozenset({ServiceKind.PREVENTIVE, ServiceKind.COMPREHENSIVE}),
        (Technique.MODEL_CHECKING,),
    ),
    ToolCapability(
        "Logging", "technique",
        frozenset({ServiceKind.DIAGNOSTIC, ServiceKind.OPPORTUNISTIC}),
        (Technique.LOGGING,),
    ),
    ToolCapability(
        "Checkpoint & Rollback", "technique",
        frozenset({ServiceKind.OPPORTUNISTIC}),
        (Technique.CHECKPOINT_ROLLBACK,),
    ),
    ToolCapability(
        "Dynamic Updates", "technique",
        frozenset({ServiceKind.TREATMENT}),
        (Technique.DYNAMIC_UPDATES,),
    ),
    ToolCapability(
        "Speculations", "technique",
        frozenset({ServiceKind.TREATMENT, ServiceKind.OPPORTUNISTIC}),
        (Technique.SPECULATIONS,),
    ),
)

#: The comparison tool rows of Figure 8 (everything except FixD itself).
PAPER_TOOLS: Tuple[ToolCapability, ...] = (
    ToolCapability(
        "liblog", "tool",
        frozenset({ServiceKind.DIAGNOSTIC, ServiceKind.OPPORTUNISTIC}),
        (Technique.LOGGING, Technique.CHECKPOINT_ROLLBACK),
    ),
    ToolCapability(
        "CMC", "tool",
        frozenset({ServiceKind.OPPORTUNISTIC}),
        (Technique.MODEL_CHECKING,),
    ),
)

#: The services the paper claims for FixD: every column.
FIXD_CLAIMED_SERVICES = frozenset(ServiceKind)

#: Which services each technique contributes to a composite tool.  Used to
#: derive FixD's row from its implemented components.
TECHNIQUE_SERVICE_CONTRIBUTION: Dict[Technique, frozenset] = {
    Technique.MODEL_CHECKING: frozenset({ServiceKind.PREVENTIVE, ServiceKind.COMPREHENSIVE}),
    Technique.LOGGING: frozenset({ServiceKind.DIAGNOSTIC, ServiceKind.OPPORTUNISTIC}),
    Technique.CHECKPOINT_ROLLBACK: frozenset({ServiceKind.OPPORTUNISTIC}),
    Technique.DYNAMIC_UPDATES: frozenset({ServiceKind.TREATMENT}),
    Technique.SPECULATIONS: frozenset({ServiceKind.TREATMENT, ServiceKind.OPPORTUNISTIC}),
}


def derive_composite_capability(
    name: str, techniques: Sequence[Technique], kind: str = "tool"
) -> ToolCapability:
    """Derive a composite tool's services from the techniques it composes."""
    services: set = set()
    for technique in techniques:
        services |= TECHNIQUE_SERVICE_CONTRIBUTION[technique]
    return ToolCapability(name, kind, frozenset(services), tuple(techniques))


@dataclass
class CapabilityMatrix:
    """The full Figure 8 matrix: technique rows, tool rows, and FixD's derived row."""

    rows: List[ToolCapability] = field(default_factory=list)

    def add(self, capability: ToolCapability) -> None:
        self.rows.append(capability)

    def get(self, name: str) -> Optional[ToolCapability]:
        for row in self.rows:
            if row.name == name:
                return row
        return None

    def techniques(self) -> List[ToolCapability]:
        return [row for row in self.rows if row.kind == "technique"]

    def tools(self) -> List[ToolCapability]:
        return [row for row in self.rows if row.kind == "tool"]

    def to_table(self) -> List[Dict[str, str]]:
        return [row.row() for row in self.rows]

    def render(self) -> str:
        """Plain-text rendering close to the paper's layout."""
        headers = ["", *[service.value for service in ServiceKind]]
        widths = [max(len(headers[0]), max((len(r.row()["name"]) for r in self.rows), default=0))]
        widths += [max(len(h), 3) for h in headers[1:]]
        lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
        for row in self.rows:
            rendered = row.row()
            cells = [rendered["name"].ljust(widths[0])]
            for service, width in zip(ServiceKind, widths[1:]):
                mark = "x" if rendered[service.value] == "yes" else "-"
                cells.append(mark.ljust(width))
            lines.append("  ".join(cells))
        return "\n".join(lines)

    def matches_paper_claim(self, name: str, claimed: frozenset) -> bool:
        row = self.get(name)
        return row is not None and row.services == claimed


def default_matrix(implemented_techniques: Optional[Iterable[Technique]] = None) -> CapabilityMatrix:
    """Build the Figure 8 matrix.

    ``implemented_techniques`` defaults to all five — the full FixD
    composition (model checking & logging & speculations & dynamic
    updates, with checkpoint/rollback provided by the speculations).
    """
    matrix = CapabilityMatrix()
    for row in PAPER_TECHNIQUES:
        matrix.add(row)
    for row in PAPER_TOOLS:
        matrix.add(row)
    techniques = list(
        implemented_techniques
        if implemented_techniques is not None
        else [
            Technique.MODEL_CHECKING,
            Technique.LOGGING,
            Technique.SPECULATIONS,
            Technique.DYNAMIC_UPDATES,
            Technique.CHECKPOINT_ROLLBACK,
        ]
    )
    matrix.add(derive_composite_capability("FixD", techniques))
    return matrix
