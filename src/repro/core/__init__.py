"""FixD core: fault detection and end-to-end orchestration.

This package glues the four components together into the pipeline the
paper describes (Figures 4 and 5):

1. a process detects an invariant violation (:mod:`repro.core.faults`);
2. the detecting process rolls back and notifies its peers; each peer
   replies with a globally consistent checkpoint of its state and a
   model of its behaviour (:mod:`repro.core.protocol`);
3. the Investigator explores executions from the assembled global
   checkpoint and returns violating trails;
4. a bug report is produced for the programmer (:mod:`repro.core.report`);
5. the Healer applies the programmer's patch, either restarting or
   resuming from the checkpoint (:mod:`repro.core.fixd`).

:mod:`repro.core.registry` reproduces the paper's Figure 8 comparison
matrix from the capabilities of the implemented tools.
"""

from repro.core.events import FaultEvent, RecoveryTimeline, TimelineEvent
from repro.core.faults import FaultDetector
from repro.core.fixd import FixD, FixDConfig, FixDReport
from repro.core.protocol import FaultResponseCoordinator, PeerResponse
from repro.core.registry import (
    CapabilityMatrix,
    ServiceKind,
    ToolCapability,
    default_matrix,
)
from repro.core.report import BugReport

__all__ = [
    "FaultEvent",
    "RecoveryTimeline",
    "TimelineEvent",
    "FaultDetector",
    "FixD",
    "FixDConfig",
    "FixDReport",
    "FaultResponseCoordinator",
    "PeerResponse",
    "CapabilityMatrix",
    "ServiceKind",
    "ToolCapability",
    "default_matrix",
    "BugReport",
]
