"""Event records for the FixD pipeline: faults, rollbacks, investigations, healing."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass(frozen=True)
class FaultEvent:
    """An invariant violation observed by the fault detector."""

    pid: str
    invariant: str
    detail: str
    time: float
    sequence: int

    def describe(self) -> str:
        return (
            f"fault #{self.sequence}: invariant {self.invariant!r} violated at {self.pid} "
            f"(t={self.time:.3f}): {self.detail}"
        )


@dataclass(frozen=True)
class TimelineEvent:
    """One step of the recovery timeline (for reports and debugging)."""

    time: float
    stage: str          # "detect", "rollback", "collect", "investigate", "report", "heal"
    description: str
    data: Dict[str, Any] = field(default_factory=dict)


@dataclass
class RecoveryTimeline:
    """Ordered record of everything FixD did in response to a fault."""

    events: List[TimelineEvent] = field(default_factory=list)

    def add(self, time: float, stage: str, description: str, **data: Any) -> TimelineEvent:
        event = TimelineEvent(time=time, stage=stage, description=description, data=dict(data))
        self.events.append(event)
        return event

    def stages(self) -> List[str]:
        return [event.stage for event in self.events]

    def for_stage(self, stage: str) -> List[TimelineEvent]:
        return [event for event in self.events if event.stage == stage]

    def describe(self) -> str:
        return "\n".join(
            f"t={event.time:.3f} [{event.stage}] {event.description}" for event in self.events
        )

    def duration(self) -> float:
        """Simulated time between the first and last recorded stage."""
        if not self.events:
            return 0.0
        return self.events[-1].time - self.events[0].time
