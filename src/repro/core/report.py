"""Bug reports: the artefact FixD hands to the programmer.

A bug report gathers, for one detected fault, everything the paper says
the programmer needs to "narrow down the problem in his/her code and try
to provide a fix" (Section 3.4):

* the fault itself (which invariant, where, when);
* the tail of the Scroll for the processes involved (what happened just
  before);
* the Investigator's trails (how the system can reach the bad state from
  the restored checkpoint); and
* the recovery timeline (what FixD did about it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.events import FaultEvent, RecoveryTimeline
from repro.investigator.investigator import InvestigationReport
from repro.investigator.trails import Trail
from repro.scroll.entry import ScrollEntry
from repro.scroll.scroll import Scroll


@dataclass
class BugReport:
    """A self-contained description of one fault and FixD's response to it."""

    fault: FaultEvent
    scroll_tail: List[ScrollEntry] = field(default_factory=list)
    investigation: Optional[InvestigationReport] = None
    timeline: Optional[RecoveryTimeline] = None
    recovery_line_times: Dict[str, float] = field(default_factory=dict)
    healed: Optional[bool] = None
    notes: List[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    # derived facts
    # ------------------------------------------------------------------
    @property
    def trails(self) -> List[Trail]:
        if self.investigation is None:
            return []
        return self.investigation.trails + self.investigation.deadlocks

    @property
    def violated_invariants(self) -> List[str]:
        names = {self.fault.invariant}
        names.update(trail.violated_invariant for trail in self.trails)
        return sorted(names)

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def to_text(self, max_scroll_entries: int = 20, max_trail_steps: int = 12) -> str:
        """Render the report as readable plain text (also used by examples)."""
        lines: List[str] = []
        lines.append("=" * 72)
        lines.append("FixD bug report")
        lines.append("=" * 72)
        lines.append(self.fault.describe())
        lines.append("")

        if self.recovery_line_times:
            lines.append("Rolled back to recovery line:")
            for pid, time in sorted(self.recovery_line_times.items()):
                lines.append(f"  {pid}: checkpoint at t={time:.3f}")
            lines.append("")

        if self.scroll_tail:
            lines.append(f"Scroll tail ({len(self.scroll_tail)} most recent recorded actions):")
            for entry in self.scroll_tail[-max_scroll_entries:]:
                lines.append("  " + entry.describe())
            lines.append("")

        if self.investigation is not None:
            lines.append("Investigation:")
            lines.append("  " + self.investigation.summary().replace("\n", "\n  "))
            lines.append("")
            for index, trail in enumerate(self.investigation.trails[:3], start=1):
                lines.append(f"Trail {index}:")
                lines.append("  " + trail.describe(max_steps=max_trail_steps).replace("\n", "\n  "))
                lines.append("")

        if self.timeline is not None and self.timeline.events:
            lines.append("Recovery timeline:")
            lines.append("  " + self.timeline.describe().replace("\n", "\n  "))
            lines.append("")

        if self.healed is not None:
            lines.append(f"Healing outcome: {'succeeded' if self.healed else 'not attempted / failed'}")
        for note in self.notes:
            lines.append(f"Note: {note}")
        return "\n".join(lines)

    @staticmethod
    def build_scroll_tail(scroll: Scroll, pids: List[str], limit: int = 50) -> List[ScrollEntry]:
        """The last ``limit`` Scroll entries touching the given processes."""
        relevant = [entry for entry in scroll if entry.pid in set(pids)]
        return relevant[-limit:]


def incident_report(plan, scroll: Scroll, result) -> str:
    """A run-level incident summary: injected faults versus observed effects.

    Bug reports require a detected invariant violation; many injected
    faults (a tolerated message drop, a crash that recovery absorbs) are
    handled without one.  The fault-scenario matrix still needs an
    artefact proving the run *noticed* the fault, so this report pairs
    the :class:`~repro.dsim.failure.FailurePlan` with what the Scroll
    recorded and how the run ended.
    """
    lines: List[str] = []
    lines.append("=" * 72)
    lines.append("FixD incident report")
    lines.append("=" * 72)
    lines.append("Injected faults:")
    for category, count in sorted(plan.summary().items()):
        lines.append(f"  {category}: {count}")
    lines.append("")
    lines.append("Observed on the Scroll:")
    counts = scroll.counts_by_kind()
    for kind in ("crash", "recover", "drop", "duplicate", "corruption", "violation"):
        lines.append(f"  {kind}: {counts.get(kind, 0)}")
    lines.append(f"  total entries: {len(scroll)}")
    storage = scroll.storage_stats()
    if storage.get("tiered"):
        lines.append(
            f"  scroll tiers: {storage['hot_entries']} hot / "
            f"{storage['spilled_entries']} spilled"
        )
    lines.append("")
    lines.append(f"Run stopped: {result.stopped_reason} at t={result.final_time:.3f} "
                 f"after {result.events_executed} events")
    for violation in result.violations:
        status = "handled" if violation.handled else "UNHANDLED"
        lines.append(
            f"  violation {violation.invariant!r} at {violation.pid} "
            f"t={violation.time:.3f} [{status}]"
        )
    return "\n".join(lines)
