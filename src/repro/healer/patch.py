"""Patches: the unit of dynamic software update.

A :class:`Patch` bundles everything needed to move running processes from
one code version to the next:

* the replacement :class:`~repro.dsim.process.Process` subclass,
* the :class:`~repro.healer.state_mapping.StateMapping` that carries the
  old state into the new layout,
* which process ids the patch targets, and
* bookkeeping (version labels, a human description of the fix).

:func:`generate_patch` plays the role of Ginseng's *patch generator*: it
diffs two versions of a process class, reports which handlers, timers and
invariants changed, and builds a patch with a sensible default state
mapping (identity, or "add defaults" when the caller supplies defaults
for new state fields).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Type

from repro.dsim.process import Process
from repro.errors import UpdateSafetyError
from repro.healer.state_mapping import StateMapping, add_defaults_mapping, identity_mapping


@dataclass(frozen=True)
class CodeDiff:
    """What changed between two versions of a process class."""

    added_methods: tuple
    removed_methods: tuple
    changed_methods: tuple
    added_handlers: tuple
    removed_handlers: tuple
    changed_handlers: tuple

    @property
    def is_empty(self) -> bool:
        return not any(
            (
                self.added_methods,
                self.removed_methods,
                self.changed_methods,
                self.added_handlers,
                self.removed_handlers,
                self.changed_handlers,
            )
        )

    def describe(self) -> str:
        parts: List[str] = []
        if self.changed_handlers:
            parts.append(f"changed handlers: {', '.join(self.changed_handlers)}")
        if self.added_handlers:
            parts.append(f"new handlers: {', '.join(self.added_handlers)}")
        if self.removed_handlers:
            parts.append(f"removed handlers: {', '.join(self.removed_handlers)}")
        if self.changed_methods:
            parts.append(f"changed methods: {', '.join(self.changed_methods)}")
        if self.added_methods:
            parts.append(f"new methods: {', '.join(self.added_methods)}")
        if self.removed_methods:
            parts.append(f"removed methods: {', '.join(self.removed_methods)}")
        return "; ".join(parts) if parts else "no code changes"


@dataclass
class Patch:
    """A dynamic software update for one or more processes."""

    name: str
    new_class: Type[Process]
    old_class: Optional[Type[Process]] = None
    target_pids: Sequence[str] = ()
    state_mapping: StateMapping = field(default_factory=identity_mapping)
    from_version: str = "v1"
    to_version: str = "v2"
    description: str = ""
    diff: Optional[CodeDiff] = None

    def __post_init__(self) -> None:
        if not (isinstance(self.new_class, type) and issubclass(self.new_class, Process)):
            raise UpdateSafetyError("a patch's new_class must be a Process subclass")

    def targets(self, pid: str) -> bool:
        """True when the patch applies to ``pid`` (an empty target list means all)."""
        return not self.target_pids or pid in self.target_pids

    def describe(self) -> str:
        lines = [
            f"Patch {self.name!r}: {self.from_version} -> {self.to_version}",
            f"  replacement class: {self.new_class.__name__}",
        ]
        if self.description:
            lines.append(f"  fix: {self.description}")
        if self.diff is not None:
            lines.append(f"  diff: {self.diff.describe()}")
        if self.target_pids:
            lines.append(f"  targets: {', '.join(self.target_pids)}")
        if self.state_mapping.description:
            lines.append(f"  state mapping: {self.state_mapping.description}")
        return "\n".join(lines)


def _method_sources(cls: Type[Process]) -> Dict[str, str]:
    """Source text per method defined directly on ``cls`` (not inherited)."""
    sources: Dict[str, str] = {}
    for name, member in vars(cls).items():
        if name.startswith("__") or not callable(member):
            continue
        try:
            sources[name] = inspect.getsource(member)
        except (OSError, TypeError):
            sources[name] = repr(member)
    return sources


def _handler_kinds(cls: Type[Process]) -> Dict[str, str]:
    """Message kind -> method name for every handler defined on ``cls``."""
    kinds: Dict[str, str] = {}
    for klass in cls.__mro__:
        for name, member in vars(klass).items():
            kind = getattr(member, "_repro_handles_kind", None)
            if kind is not None and kind not in kinds:
                kinds[kind] = name
    return kinds


def diff_classes(old_class: Type[Process], new_class: Type[Process]) -> CodeDiff:
    """Compute which methods and handlers changed between two process versions."""
    old_sources = _method_sources(old_class)
    new_sources = _method_sources(new_class)
    added = tuple(sorted(set(new_sources) - set(old_sources)))
    removed = tuple(sorted(set(old_sources) - set(new_sources)))
    changed = tuple(
        sorted(
            name
            for name in set(old_sources) & set(new_sources)
            if old_sources[name] != new_sources[name]
        )
    )
    old_handlers = _handler_kinds(old_class)
    new_handlers = _handler_kinds(new_class)
    added_handlers = tuple(sorted(set(new_handlers) - set(old_handlers)))
    removed_handlers = tuple(sorted(set(old_handlers) - set(new_handlers)))
    changed_handlers = tuple(
        sorted(
            kind
            for kind in set(old_handlers) & set(new_handlers)
            if old_handlers[kind] in changed or new_handlers[kind] in changed
        )
    )
    return CodeDiff(
        added_methods=added,
        removed_methods=removed,
        changed_methods=changed,
        added_handlers=added_handlers,
        removed_handlers=removed_handlers,
        changed_handlers=changed_handlers,
    )


def generate_patch(
    old_class: Type[Process],
    new_class: Type[Process],
    name: Optional[str] = None,
    target_pids: Sequence[str] = (),
    new_state_defaults: Optional[Dict[str, Any]] = None,
    state_mapping: Optional[StateMapping] = None,
    description: str = "",
    from_version: str = "v1",
    to_version: str = "v2",
) -> Patch:
    """Ginseng-style patch generation: diff two versions and build the patch.

    When ``new_state_defaults`` is given, the default state mapping adds
    those fields to the old state; otherwise the identity mapping is
    used.  Callers with structural state changes pass an explicit
    ``state_mapping``.
    """
    diff = diff_classes(old_class, new_class)
    if diff.is_empty and old_class is not new_class:
        # Same source text — still a legitimate patch (e.g. constant tables
        # changed), but surface the oddity in the description.
        description = description or "no source-level differences detected"
    if state_mapping is None:
        if new_state_defaults:
            state_mapping = add_defaults_mapping(new_state_defaults)
        else:
            state_mapping = identity_mapping()
    return Patch(
        name=name or f"{old_class.__name__}->{new_class.__name__}",
        new_class=new_class,
        old_class=old_class,
        target_pids=tuple(target_pids),
        state_mapping=state_mapping,
        from_version=from_version,
        to_version=to_version,
        description=description,
        diff=diff,
    )
