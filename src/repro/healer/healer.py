"""The Healer facade (Figure 5): human fix + automatic recovery.

The Healer is handed the programmer's :class:`~repro.healer.patch.Patch`
(the human part of Figure 5) and drives the automatic part: choosing and
executing a recovery strategy, with safety checks, and reporting what was
preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.healer.patch import Patch
from repro.healer.strategies import (
    RecoveryOutcome,
    RecoveryStrategy,
    restart_from_scratch,
    resume_from_checkpoint,
)
from repro.timemachine.recovery_line import RecoveryLine
from repro.timemachine.time_machine import TimeMachine


@dataclass
class HealReport:
    """The outcome of a healing attempt."""

    patch_name: str
    outcome: RecoveryOutcome
    notes: List[str] = field(default_factory=list)

    @property
    def strategy(self) -> RecoveryStrategy:
        return self.outcome.strategy

    @property
    def succeeded(self) -> bool:
        if self.outcome.strategy is RecoveryStrategy.RESTART_FROM_SCRATCH:
            return True
        return self.outcome.all_updates_applied

    def describe(self) -> str:
        lines = [
            f"Healing with patch {self.patch_name!r} via {self.strategy.value}: "
            + ("succeeded" if self.succeeded else "failed"),
            f"  processes: {', '.join(self.outcome.pids)}",
            f"  simulated time preserved: {self.outcome.total_preserved_time:.1f}",
            f"  simulated time lost: {self.outcome.total_lost_time:.1f}",
        ]
        for record in self.outcome.updates:
            status = "applied" if record.applied else "refused"
            lines.append(f"  update {record.pid}: {status} ({record.old_class} -> {record.new_class})")
        lines.extend(f"  note: {note}" for note in self.notes)
        return "\n".join(lines)


class Healer:
    """Chooses and executes a recovery strategy for a given patch."""

    def __init__(self, cluster, time_machine: Optional[TimeMachine] = None) -> None:
        self._cluster = cluster
        self._time_machine = time_machine
        self.reports: List[HealReport] = []

    # ------------------------------------------------------------------
    # strategies
    # ------------------------------------------------------------------
    def heal(
        self,
        patch: Patch,
        strategy: RecoveryStrategy = RecoveryStrategy.RESUME_FROM_CHECKPOINT,
        recovery_line: Optional[RecoveryLine] = None,
        force: bool = False,
    ) -> HealReport:
        """Apply ``patch`` using the requested strategy and record the report."""
        notes: List[str] = []
        if strategy is RecoveryStrategy.RESUME_FROM_CHECKPOINT:
            if self._time_machine is None:
                notes.append(
                    "no Time Machine available: falling back to restart-from-scratch"
                )
                strategy = RecoveryStrategy.RESTART_FROM_SCRATCH
        if strategy is RecoveryStrategy.RESUME_FROM_CHECKPOINT:
            outcome = resume_from_checkpoint(
                self._cluster, self._time_machine, patch, recovery_line=recovery_line, force=force
            )
            if not outcome.all_updates_applied:
                notes.append(
                    "some in-place updates were refused by the safety checker; "
                    "re-run with force=True or restart those processes"
                )
        else:
            outcome = restart_from_scratch(self._cluster, patch)
        report = HealReport(patch_name=patch.name, outcome=outcome, notes=notes)
        self.reports.append(report)
        return report

    def heal_with_best_strategy(self, patch: Patch, force: bool = False) -> HealReport:
        """Prefer resume-from-checkpoint, fall back to restart if updates are refused."""
        report = self.heal(patch, RecoveryStrategy.RESUME_FROM_CHECKPOINT, force=force)
        if report.succeeded:
            return report
        fallback = self.heal(patch, RecoveryStrategy.RESTART_FROM_SCRATCH)
        fallback.notes.append("resume-from-checkpoint failed; restarted from scratch instead")
        return fallback
