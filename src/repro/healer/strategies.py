"""Recovery strategies: restart from scratch vs. resume from checkpoint.

Section 3.4 describes exactly two options once a fix exists:

* restart the corrected program from the beginning — simple, classic,
  loses all work; or
* resume from a previously saved checkpoint where all invariants hold,
  dynamically updating the executing processes in place — keeps "the
  potential to use computation that was correctly performed while
  executing the faulty program".

Both strategies are implemented here as functions returning a
:class:`RecoveryOutcome` that quantifies the work preserved and lost, so
the claim-3.4-resume benchmark can compare them on long-running
workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from repro.dsim.process import ProcessContext
from repro.dsim.rng import DeterministicRNG
from repro.errors import InvariantViolation, PatchApplicationError, RecoveryLineError
from repro.healer.dsu import DynamicUpdater, UpdateRecord
from repro.healer.patch import Patch
from repro.timemachine.recovery_line import RecoveryLine
from repro.timemachine.time_machine import TimeMachine


class RecoveryStrategy(Enum):
    RESTART_FROM_SCRATCH = "restart-from-scratch"
    RESUME_FROM_CHECKPOINT = "resume-from-checkpoint"


@dataclass
class RecoveryOutcome:
    """What a recovery strategy did and what it cost."""

    strategy: RecoveryStrategy
    pids: List[str]
    updates: List[UpdateRecord] = field(default_factory=list)
    rollback_distance: Dict[str, float] = field(default_factory=dict)
    preserved_time: Dict[str, float] = field(default_factory=dict)
    recovery_line_label: str = ""

    @property
    def all_updates_applied(self) -> bool:
        return all(record.applied for record in self.updates)

    @property
    def total_lost_time(self) -> float:
        """Simulated time discarded across processes (work to redo)."""
        return sum(self.rollback_distance.values())

    @property
    def total_preserved_time(self) -> float:
        """Simulated time of work kept (zero for restart-from-scratch)."""
        return sum(self.preserved_time.values())


def restart_from_scratch(cluster, patch: Patch, pids: Optional[List[str]] = None) -> RecoveryOutcome:
    """Replace the code and restart the targeted processes from their initial state.

    The cluster must have been built from factories (the usual case) so
    replacement instances can be constructed.  The patch's new class
    replaces the registered factory before restarting, so the restarted
    processes run the corrected code.
    """
    targets = [pid for pid in (pids or cluster.pids) if patch.targets(pid)]
    if not targets:
        raise PatchApplicationError(f"patch {patch.name!r} targets none of the given processes")
    lost = {}
    for pid in targets:
        lost[pid] = cluster.now  # everything computed so far is discarded
        cluster._factories[pid] = patch.new_class  # noqa: SLF001 - install fixed code
        cluster.restart_process(pid)
    return RecoveryOutcome(
        strategy=RecoveryStrategy.RESTART_FROM_SCRATCH,
        pids=targets,
        rollback_distance=lost,
        preserved_time={pid: 0.0 for pid in targets},
    )


def _state_satisfies_new_invariants(patch: Patch, pid: str, state: Dict) -> bool:
    """Probe whether ``state`` would satisfy the invariants of the patched code."""
    probe = patch.new_class()
    probe.bind(
        ProcessContext(
            pid=pid,
            peers=(pid,),
            send_fn=lambda message: None,
            timer_fn=lambda name, delay, payload: None,
            cancel_timer_fn=lambda name: None,
            now_fn=lambda: 0.0,
            rng=DeterministicRNG(0),
        )
    )
    probe.state = dict(state)
    try:
        probe.check_invariants()
    except InvariantViolation:
        return False
    return True


def invariant_satisfying_line(time_machine: TimeMachine, patch: Patch) -> RecoveryLine:
    """The latest consistent recovery line whose states satisfy the patched invariants.

    Section 3.4: resumption must happen from "a previously saved
    checkpoint where all invariants are satisfied".  For every process the
    newest checkpoint whose state passes the *new* code's invariants is
    used as the upper bound; the usual consistency propagation then runs
    below those bounds.  Falls back to the unconstrained latest line when
    no such bound exists (e.g. the patch targets none of the processes).
    """
    bounds: Dict[str, float] = {}
    for pid in time_machine.store.pids():
        if not patch.targets(pid):
            continue
        for checkpoint in reversed(time_machine.store.log_for(pid).all()):
            if _state_satisfies_new_invariants(patch, pid, checkpoint.state):
                bounds[pid] = checkpoint.time
                break
    try:
        return time_machine.latest_recovery_line(not_after=bounds or None)
    except RecoveryLineError:
        return time_machine.latest_recovery_line()


def resume_from_checkpoint(
    cluster,
    time_machine: TimeMachine,
    patch: Patch,
    recovery_line: Optional[RecoveryLine] = None,
    force: bool = False,
) -> RecoveryOutcome:
    """Roll back to a consistent checkpoint, update in place, and resume.

    Parameters
    ----------
    recovery_line:
        The line to roll back to; when omitted, the latest consistent
        line whose states satisfy the *patched* code's invariants is used
        (per Section 3.4).
    force:
        Passed through to the dynamic updater (apply even if the safety
        verdict is negative).
    """
    line = recovery_line if recovery_line is not None else invariant_satisfying_line(time_machine, patch)
    rollback = time_machine.rollback_to(line)
    updater = DynamicUpdater(cluster)
    updates: List[UpdateRecord] = []
    preserved: Dict[str, float] = {}
    for pid in line.checkpoints:
        if patch.targets(pid):
            updates.append(updater.apply_to(pid, patch, force=force))
        preserved[pid] = line.checkpoints[pid].time
    return RecoveryOutcome(
        strategy=RecoveryStrategy.RESUME_FROM_CHECKPOINT,
        pids=sorted(line.checkpoints),
        updates=updates,
        rollback_distance=dict(rollback.rollback_distance),
        preserved_time=preserved,
        recovery_line_label=line.label,
    )
