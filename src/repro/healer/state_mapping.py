"""State mappings: carrying a process's state across a code update.

Ginseng's central safety problem is that the new code may expect a
different state layout than the old code left behind.  A
:class:`StateMapping` is an explicit, checkable transformer from the old
state dictionary to the new one, together with the properties the result
must satisfy (required keys, per-key types, and an optional equivalence
predicate relating old and new state — the paper's "state equivalence is
guaranteed" condition for ModelD-based updates).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Tuple, Type

from repro.errors import UpdateSafetyError


@dataclass
class StateMapping:
    """A verified transformation of process state across versions."""

    transform: Callable[[Dict[str, Any]], Dict[str, Any]]
    required_keys: Tuple[str, ...] = ()
    key_types: Mapping[str, type] = field(default_factory=dict)
    equivalence: Optional[Callable[[Dict[str, Any], Dict[str, Any]], bool]] = None
    description: str = ""

    def apply(self, old_state: Dict[str, Any]) -> Dict[str, Any]:
        """Transform ``old_state`` and verify the result; raises on any failure."""
        new_state = self.transform(copy.deepcopy(old_state))
        if not isinstance(new_state, dict):
            raise UpdateSafetyError(
                f"state mapping must produce a dict, got {type(new_state).__name__}"
            )
        self.verify(old_state, new_state)
        return new_state

    def verify(self, old_state: Dict[str, Any], new_state: Dict[str, Any]) -> None:
        """Check the mapped state against the declared requirements."""
        for key in self.required_keys:
            if key not in new_state:
                raise UpdateSafetyError(f"mapped state is missing required key {key!r}")
        for key, expected_type in self.key_types.items():
            if key in new_state and not isinstance(new_state[key], expected_type):
                raise UpdateSafetyError(
                    f"mapped state key {key!r} has type {type(new_state[key]).__name__}, "
                    f"expected {expected_type.__name__}"
                )
        if self.equivalence is not None and not self.equivalence(old_state, new_state):
            raise UpdateSafetyError(
                "state mapping violated the declared old/new state equivalence"
            )


def identity_mapping(
    required_keys: Tuple[str, ...] = (), description: str = "identity"
) -> StateMapping:
    """The mapping that keeps the state unchanged (layout-compatible updates)."""
    return StateMapping(
        transform=lambda state: state,
        required_keys=required_keys,
        description=description,
    )


def add_defaults_mapping(defaults: Dict[str, Any], description: str = "") -> StateMapping:
    """A mapping that adds new fields with default values (the common upgrade shape)."""

    def transform(state: Dict[str, Any]) -> Dict[str, Any]:
        for key, value in defaults.items():
            state.setdefault(key, copy.deepcopy(value))
        return state

    return StateMapping(
        transform=transform,
        required_keys=tuple(defaults),
        description=description or f"add defaults for {sorted(defaults)}",
    )


def rename_keys_mapping(renames: Dict[str, str], description: str = "") -> StateMapping:
    """A mapping that renames state keys (old name -> new name)."""

    def transform(state: Dict[str, Any]) -> Dict[str, Any]:
        for old_key, new_key in renames.items():
            if old_key in state:
                state[new_key] = state.pop(old_key)
        return state

    return StateMapping(
        transform=transform,
        required_keys=tuple(renames.values()),
        description=description or f"rename {renames}",
    )
