"""The dynamic software updater: applying patches to running processes.

Applying a patch to a live process means, in this substrate:

1. verify the update is safe at this point (:mod:`repro.healer.safety`);
2. build an instance of the new class, bind it to the *existing* process
   context (so its identity, peers, clocks and random stream carry
   over);
3. install the mapped state; and
4. swap the instance into the cluster, so every subsequent delivery runs
   the new code.

This is the moral equivalent of Ginseng's indirection tables — the
process keeps running, only its code and state layout change — and of
ModelD's "inject actions that divert the execution of a program using an
updated version of the actions".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.dsim.process import Process
from repro.errors import PatchApplicationError
from repro.healer.patch import Patch
from repro.healer.safety import SafetyVerdict, UpdateSafetyChecker


@dataclass
class UpdateRecord:
    """One applied (or refused) update."""

    pid: str
    patch_name: str
    applied: bool
    time: float
    verdict: SafetyVerdict
    old_class: str = ""
    new_class: str = ""


class DynamicUpdater:
    """Applies :class:`Patch` objects to processes of a running cluster."""

    def __init__(self, cluster, safety_checker: Optional[UpdateSafetyChecker] = None) -> None:
        self._cluster = cluster
        self.safety = safety_checker or UpdateSafetyChecker()
        self.history: List[UpdateRecord] = []

    # ------------------------------------------------------------------
    # application
    # ------------------------------------------------------------------
    def apply_to(self, pid: str, patch: Patch, force: bool = False) -> UpdateRecord:
        """Apply ``patch`` to one process.

        ``force=True`` skips the refusal on an unsafe verdict (the checks
        still run and are recorded); it exists because the paper allows
        the programmer to take responsibility: "the programmer has to
        either force rollback to a point where this condition can be
        automatically verified or has to write the update such that state
        equivalence is guaranteed".
        """
        if not patch.targets(pid):
            raise PatchApplicationError(f"patch {patch.name!r} does not target process {pid!r}")
        verdict = self.safety.check(self._cluster, pid, patch)
        if not verdict.safe and not force:
            record = UpdateRecord(
                pid=pid,
                patch_name=patch.name,
                applied=False,
                time=self._cluster.now,
                verdict=verdict,
                old_class=type(self._cluster.process(pid)).__name__,
                new_class=patch.new_class.__name__,
            )
            self.history.append(record)
            return record

        old_process = self._cluster.process(pid)
        mapped_state = verdict.mapped_state
        if mapped_state is None:
            # force-applied despite a failed mapping: fall back to the raw state
            mapped_state = dict(old_process.state)

        new_process = self._instantiate(patch, old_process, mapped_state)
        self._cluster._processes[pid] = new_process  # noqa: SLF001 - deliberate swap point
        if pid in self._cluster._factories:  # keep restart-from-scratch consistent with new code
            self._cluster._factories[pid] = patch.new_class

        record = UpdateRecord(
            pid=pid,
            patch_name=patch.name,
            applied=True,
            time=self._cluster.now,
            verdict=verdict,
            old_class=type(old_process).__name__,
            new_class=patch.new_class.__name__,
        )
        self.history.append(record)
        self._cluster._record_trace(pid, "dsu", f"updated to {patch.new_class.__name__}")
        return record

    def apply(self, patch: Patch, force: bool = False) -> List[UpdateRecord]:
        """Apply ``patch`` to every process it targets."""
        records = []
        for pid in self._cluster.pids:
            if patch.targets(pid):
                records.append(self.apply_to(pid, patch, force=force))
        return records

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _instantiate(self, patch: Patch, old_process: Process, mapped_state: Dict) -> Process:
        try:
            new_process = patch.new_class()
        except Exception as exc:
            raise PatchApplicationError(
                f"could not instantiate replacement class {patch.new_class.__name__}: {exc}"
            ) from exc
        new_process.bind(old_process.ctx)
        # Carry execution identity across the update: clocks, counters, crash flag.
        new_process._vector_clock = old_process._vector_clock  # noqa: SLF001
        new_process._lamport = old_process._lamport  # noqa: SLF001
        new_process._sent_count = old_process._sent_count  # noqa: SLF001
        new_process._received_count = old_process._received_count  # noqa: SLF001
        new_process._checkpoint_sequence = old_process._checkpoint_sequence  # noqa: SLF001
        new_process.state = dict(mapped_state)
        return new_process

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def applied_updates(self) -> List[UpdateRecord]:
        return [record for record in self.history if record.applied]

    def refused_updates(self) -> List[UpdateRecord]:
        return [record for record in self.history if not record.applied]
