"""Update-point safety analysis.

Ginseng's contribution is making dynamic updates *safe*: an update may
only be applied at points where the old and new versions agree about the
state, and where no in-flight activity still depends on the old code.
This module reproduces those checks for the simulator's world:

1. **quiescence** — the target process must not be executing a handler
   (always true between simulator events) and, optionally, must have no
   messages in flight addressed to it whose kind is handled differently
   by the new version ("con-freeness" for changed handlers);
2. **state mappability** — the declared state mapping must apply cleanly
   to the process's current state;
3. **invariant preservation** — the mapped state must satisfy the
   invariants declared by the *new* version of the code (the paper's
   "dynamically updating the process does not ... invalidate any
   invariants").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.dsim.process import Process, ProcessContext
from repro.dsim.rng import DeterministicRNG
from repro.dsim.scheduler import EventKind
from repro.errors import InvariantViolation, UpdateSafetyError
from repro.healer.patch import Patch


@dataclass
class SafetyVerdict:
    """The outcome of a safety analysis for one (process, patch) pair."""

    pid: str
    safe: bool
    reasons: List[str] = field(default_factory=list)
    mapped_state: Optional[Dict[str, Any]] = None

    def describe(self) -> str:
        status = "SAFE" if self.safe else "UNSAFE"
        lines = [f"update of {self.pid}: {status}"]
        lines.extend(f"  - {reason}" for reason in self.reasons)
        return "\n".join(lines)


class UpdateSafetyChecker:
    """Checks whether a patch can be applied to a process right now."""

    def __init__(self, require_no_inflight_for_changed_handlers: bool = True) -> None:
        self.require_no_inflight_for_changed_handlers = require_no_inflight_for_changed_handlers

    # ------------------------------------------------------------------
    # individual checks
    # ------------------------------------------------------------------
    def _check_inflight(self, cluster, pid: str, patch: Patch) -> Optional[str]:
        if not self.require_no_inflight_for_changed_handlers or patch.diff is None:
            return None
        changed = set(patch.diff.changed_handlers) | set(patch.diff.removed_handlers)
        if not changed:
            return None
        pending = [
            event.payload
            for event in cluster.scheduler.pending(EventKind.DELIVER)
            if event.target == pid and event.payload.kind in changed
        ]
        if pending:
            kinds = sorted({message.kind for message in pending})
            return (
                f"{len(pending)} in-flight message(s) of changed kind(s) {', '.join(kinds)} "
                f"are still addressed to {pid}"
            )
        return None

    def _check_state_mapping(self, process: Process, patch: Patch) -> tuple:
        try:
            mapped = patch.state_mapping.apply(dict(process.state))
            return mapped, None
        except UpdateSafetyError as error:
            return None, f"state mapping failed: {error}"

    def _check_new_version_invariants(
        self, pid: str, patch: Patch, mapped_state: Dict[str, Any]
    ) -> Optional[str]:
        probe = patch.new_class()
        probe.bind(
            ProcessContext(
                pid=pid,
                peers=(pid,),
                send_fn=lambda message: None,
                timer_fn=lambda name, delay, payload: None,
                cancel_timer_fn=lambda name: None,
                now_fn=lambda: 0.0,
                rng=DeterministicRNG(0),
            )
        )
        probe.state = dict(mapped_state)
        try:
            probe.check_invariants()
        except InvariantViolation as violation:
            return f"mapped state violates new-version invariant {violation.name!r}"
        return None

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def check(self, cluster, pid: str, patch: Patch) -> SafetyVerdict:
        """Run every safety check; the verdict lists each failure reason."""
        reasons: List[str] = []
        process = cluster.process(pid)
        if process.crashed:
            reasons.append("process is crashed; restart it instead of updating it in place")

        inflight_reason = self._check_inflight(cluster, pid, patch)
        if inflight_reason is not None:
            reasons.append(inflight_reason)

        mapped_state, mapping_reason = self._check_state_mapping(process, patch)
        if mapping_reason is not None:
            reasons.append(mapping_reason)

        if mapped_state is not None:
            invariant_reason = self._check_new_version_invariants(pid, patch, mapped_state)
            if invariant_reason is not None:
                reasons.append(invariant_reason)

        if not reasons:
            reasons.append("quiescent, state mapping applies cleanly, new-version invariants hold")
        return SafetyVerdict(
            pid=pid,
            safe=not any(
                reason
                for reason in reasons
                if not reason.startswith("quiescent")
            ),
            reasons=reasons,
            mapped_state=mapped_state,
        )
