"""The Healer: dynamic software update and recovery (Sections 3.4 / 4.4, Figure 5).

After the Investigator hands the programmer the trails that lead to an
invariant violation, the programmer produces a fix.  The Healer is the
component that gets that fix into the running system.  Two recovery
strategies are supported, exactly as the paper lays out:

* **restart from scratch** — the classic option: replace the code and
  start over from the initial state, discarding all completed work;
* **resume from checkpoint** — roll the system back to a consistent
  checkpoint where all invariants hold, dynamically update the running
  processes in place (Ginseng-style patches with state mapping and
  safety checks), and continue, preserving the computation performed
  before the fault.

The package provides patch representation and generation
(:mod:`repro.healer.patch`), state mapping (:mod:`repro.healer.state_mapping`),
update-point safety analysis (:mod:`repro.healer.safety`), the dynamic
updater itself (:mod:`repro.healer.dsu`), the two recovery strategies
(:mod:`repro.healer.strategies`) and the :class:`~repro.healer.healer.Healer`
facade FixD drives.
"""

from repro.healer.dsu import DynamicUpdater, UpdateRecord
from repro.healer.healer import Healer, HealReport
from repro.healer.patch import Patch, generate_patch
from repro.healer.safety import SafetyVerdict, UpdateSafetyChecker
from repro.healer.state_mapping import StateMapping, identity_mapping
from repro.healer.strategies import RecoveryOutcome, RecoveryStrategy

__all__ = [
    "DynamicUpdater",
    "UpdateRecord",
    "Healer",
    "HealReport",
    "Patch",
    "generate_patch",
    "SafetyVerdict",
    "UpdateSafetyChecker",
    "StateMapping",
    "identity_mapping",
    "RecoveryOutcome",
    "RecoveryStrategy",
]
