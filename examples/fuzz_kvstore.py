"""Fuzz the kvstore: find, dedup, shrink and replay fault interleavings.

The fuzzer samples fault schedules no one thought to write, keeps the
ones whose *behaviour* is new (coverage = what the run did: detection
evidence, Scroll interleaving shapes, recovery path, verdicts), and
delta-debugs every substantive failure down to a minimal schedule that
still reproduces the identical failure signature.  Minimized failures
become ordinary suite artefacts — the same JSON files
``python -m repro.api`` replays.

This is the library-level loop; the CLI equivalent is::

    PYTHONPATH=src python -m repro.fuzz kvstore --max-execs 80 --seed 7 \\
        --params stale_backups=true --suites /tmp/kv-suites

Run with::

    PYTHONPATH=src python examples/fuzz_kvstore.py
"""

import tempfile
from pathlib import Path

from repro.api import Experiment
from repro.api.suite import run_suite_records
from repro.fuzz import Budget


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="fuzz-kvstore-") as tmp:
        suites_dir = Path(tmp) / "suites"

        # Fuzz the kvstore whose backup replicas carry the seeded
        # stale-version bug: 80 deterministic executions, coverage-keyed
        # dedup, every new failure shrunk and saved as an artefact.
        report = Experiment.fuzz(
            "kvstore",
            params={"stale_backups": True},
            seed=7,
            budget=Budget(max_execs=80),
            suites_dir=suites_dir,
            progress=lambda line: print(f"  {line}"),
        )

        print(
            f"\n{report.execs} execs ({report.execs_per_sec:.0f}/s): "
            f"{report.new_coverage} coverage points, "
            f"{report.distinct_failures} distinct failure(s), "
            f"{len(report.minimized)} minimized"
        )
        for found in report.minimized:
            print(
                f"  {found.scenario.name}: {found.faults_before} -> "
                f"{found.faults_after} fault(s) [{found.scenario.faults.label}]"
            )
        assert report.distinct_failures >= 1, "the seeded bug must be rediscovered"

        # Every artefact the fuzzer wrote replays green-or-expected.
        for artefact in sorted(suites_dir.glob("*.json")):
            ok, records = run_suite_records(artefact)
            print(f"  replay {artefact.name}: ok={ok}")
            assert ok


if __name__ == "__main__":
    main()
