"""Scenario: speculations, communication-induced checkpoints and safe recovery lines.

This example reproduces the mechanics of Figures 2 and 6 on a token-ring
mutual-exclusion application:

1. the ring runs with communication-induced checkpointing (a checkpoint
   before every receive, exactly as Figure 6 draws it);
2. node0 starts a *speculation* — it assumes the token it forwards will
   come back within one round — and keeps computing;
3. a buggy node duplicates the token, violating mutual exclusion;
4. the speculation is aborted: every process absorbed into it rolls back
   to its absorption checkpoint automatically, and the safe recovery line
   computed from the checkpoint store is compared against the naive
   "latest checkpoint of everyone" line, which is not always consistent.

Run with::

    python examples/token_ring_speculation.py
"""

from repro.api import Cluster, ClusterConfig, apps
from repro.scroll.recorder import ScrollRecorder
from repro.timemachine.recovery_line import compute_recovery_line, is_consistent, unsafe_line
from repro.timemachine.time_machine import TimeMachine

single_token_invariant = apps.app("token_ring").check("single-token")


def main() -> None:
    cluster = Cluster(ClusterConfig(seed=5, halt_on_violation=False))
    apps.build(cluster, "token_ring", nodes=3, buggy=True, max_rounds=6)

    recorder = ScrollRecorder()
    cluster.add_hook(recorder)

    time_machine = TimeMachine()   # communication-induced checkpointing by default
    time_machine.attach(cluster)

    cluster.start()

    # Node 0 speculates that the token will return promptly; if that assumption
    # fails, everything it has influenced since is rolled back with it.
    speculation = time_machine.speculations.begin(
        "node0", assumption="token returns within one round"
    )

    cluster.run(until=10.0, max_events=300)

    states = {pid: cluster.process(pid).state for pid in cluster.pids}
    holders = [pid for pid, state in states.items() if state.get("has_token")]
    print("token holders after the buggy run:", holders)
    print("single-token invariant holds:", single_token_invariant(states))
    print("speculation members so far:", sorted(speculation.members))
    print()

    # The assumption failed (the token was duplicated): abort the speculation.
    time_machine.speculations.abort(speculation.spec_id)
    states_after = {pid: cluster.process(pid).state for pid in cluster.pids}
    print("after aborting the speculation:")
    for pid in cluster.pids:
        print(f"  {pid}: entries={states_after[pid]['entries']} has_token={states_after[pid]['has_token']}")
    print("speculation statistics:", time_machine.speculations.stats())
    print()

    # Figure 6: safe versus unsafe recovery lines.
    naive = unsafe_line(time_machine.store)
    safe = compute_recovery_line(time_machine.store)
    print("naive latest-checkpoint line consistent:", is_consistent(naive.checkpoints))
    print(
        "safe recovery line: "
        + ", ".join(
            f"{pid}@t={checkpoint.time:.1f}" for pid, checkpoint in sorted(safe.checkpoints.items())
        )
    )
    print("rollback steps per process:", safe.rolled_back_steps)
    print("domino effect:", safe.domino_effect)
    print()
    print("checkpoint store:", time_machine.store.checkpoint_counts())
    print("copy-on-write savings:", f"{time_machine.cow_store.savings_ratio():.1%}")
    print("scroll recorded", len(recorder.scroll), "actions")


if __name__ == "__main__":
    main()
