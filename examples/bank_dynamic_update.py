"""Scenario: healing a distributed bank with a dynamic software update (Figure 5).

The bank's branches silently charge an unaccounted fee on incoming
transfers, so the system-wide balance drifts away from its initial total.
The global conservation invariant is checked by the Investigator rather
than by any single branch — no process can see the whole balance locally,
which is exactly the class of bug the paper motivates.

The example then compares the paper's two recovery options on identical
clusters:

* restart-from-scratch with the fixed code, losing all completed
  transfers; versus
* resume-from-checkpoint with an in-place dynamic update (the Healer's
  preferred strategy), which preserves the work done before the fault.

Run with::

    python examples/bank_dynamic_update.py
"""

from repro.api import Cluster, ClusterConfig, apps
from repro.api.modelcheck import Investigator, InvestigatorConfig
from repro.healer.healer import Healer
from repro.healer.patch import generate_patch
from repro.healer.strategies import RecoveryStrategy
from repro.timemachine.time_machine import TimeMachine

_BANK = apps.app("bank")
BankBranch = _BANK.exports["BankBranch"]
BankBranchFixed = _BANK.exports["BankBranchFixed"]
total_balance = _BANK.exports["total_balance"]
total_balance_invariant = _BANK.exports["total_balance_invariant"]


def run_bank(strategy: RecoveryStrategy) -> dict:
    """Run the buggy bank, detect the drift, heal with ``strategy``, finish the run."""
    cluster = Cluster(ClusterConfig(seed=13, halt_on_violation=False))
    apps.build(cluster, "bank", branches=3)

    time_machine = TimeMachine()
    time_machine.attach(cluster)

    # Phase 1: run until the branches have exchanged a few transfers.
    cluster.run(until=6.0, max_events=200)
    drifted = not total_balance_invariant(
        {pid: cluster.process(pid).state for pid in cluster.pids}
    )

    # Phase 2: the Investigator confirms the conservation violation is reachable.
    investigator = Investigator(InvestigatorConfig(max_states=2000, max_depth=40))
    investigation = investigator.investigate(
        {pid: BankBranch for pid in cluster.pids},
        checkpoint=time_machine.latest_recovery_line().as_global_checkpoint(),
        global_invariants={"conservation": total_balance_invariant},
    )

    # Phase 3: heal with the requested strategy and let the run finish.
    patch = generate_patch(
        BankBranch, BankBranchFixed, description="credit incoming transfers in full"
    )
    healer = Healer(cluster, time_machine)
    heal_report = healer.heal(patch, strategy=strategy)
    cluster.resume()
    cluster.run(max_events=500)

    states = {pid: cluster.process(pid).state for pid in cluster.pids}
    return {
        "strategy": strategy.value,
        "drift_detected": drifted,
        "violating_trails": len(investigation.trails),
        "heal_succeeded": heal_report.succeeded,
        "preserved_time": heal_report.outcome.total_preserved_time,
        "lost_time": heal_report.outcome.total_lost_time,
        "final_total_balance": total_balance(states),
        "transfers_applied": sum(state["applied"] for state in states.values()),
    }


def main() -> None:
    for strategy in (
        RecoveryStrategy.RESUME_FROM_CHECKPOINT,
        RecoveryStrategy.RESTART_FROM_SCRATCH,
    ):
        outcome = run_bank(strategy)
        print(f"--- {outcome['strategy']} ---")
        for key, value in outcome.items():
            if key != "strategy":
                print(f"  {key}: {value}")
        print()


if __name__ == "__main__":
    main()
