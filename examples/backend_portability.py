"""One application, two substrates: the unified Backend layer.

Runs the same word-count application twice through the identical cluster
API — once on the deterministic simulator, once on real OS processes
over the batched pipe transport — and shows that:

* the application code and the registration calls are byte-identical;
* FixD's recording layer attaches backend-agnostically (the Scroll
  fills on both substrates);
* fault-free final states agree, and the batched transport ships many
  messages per pickled pipe write.

(Fault plans map onto both substrates through the same
``set_failure_plan`` call; see ``tests/integration/test_end_to_end.py``
for crash and message-fault injection on real processes.)

Run with::

    PYTHONPATH=src python examples/backend_portability.py
"""

from __future__ import annotations

from repro.apps.wordcount import build_wordcount_burst_cluster, expected_counts
from repro.core.fixd import FixD, FixDConfig
from repro.dsim.cluster import ClusterConfig


def run_on(backend_name: str):
    fixd = FixD(FixDConfig(backend=backend_name, investigate_on_fault=False))
    cluster = fixd.make_cluster(ClusterConfig(seed=42))
    build_wordcount_burst_cluster(cluster, workers=3, chunks=30, words_per_chunk=10)
    result = cluster.run(until=300.0)
    return cluster, fixd, result


def main() -> None:
    states = {}
    for backend_name in ("sim", "mp"):
        cluster, fixd, result = run_on(backend_name)
        master = result.process_states["master"]
        states[backend_name] = master["counts"]
        print(f"[{backend_name}] stopped: {result.stopped_reason} "
              f"after {result.events_executed} events "
              f"(capabilities: {sorted(cluster.backend.capabilities) or ['-']})")
        print(f"[{backend_name}] aggregated {master['aggregated']}/30 chunks, "
              f"scroll recorded {len(fixd.scroll)} actions")
        transport = getattr(cluster.backend, "transport_stats", None)
        if transport:
            ratio = transport["messages_routed"] / max(1, transport["delivery_batches"])
            print(f"[{backend_name}] transport: {transport['messages_routed']} messages "
                  f"in {transport['delivery_batches']} batched writes "
                  f"({ratio:.1f} msgs/write, largest batch {transport['max_batch']})")

    assert states["sim"] == states["mp"] == expected_counts(30, 10)
    print("parity: identical word counts on both substrates ✓")


if __name__ == "__main__":
    main()
