"""One scenario, two substrates: backends are just a Scenario field.

Runs the same declarative word-count scenario through the facade twice —
once on the deterministic simulator, once on real OS processes over the
batched pipe transport — and shows that:

* the scenario differs *only* in its ``backend`` field (the grid builds
  both cells from one spec);
* FixD's recording layer attaches backend-agnostically (the Scroll
  fills on both substrates);
* fault-free final states agree, and the batched transport ships many
  messages per pickled pipe write (``outcome.transport``).

(Fault schedules map onto both substrates the same way; the mp slice of
the fault matrix — ``pytest -m matrix`` — injects crash/drop/delay on
real processes through the identical Scenario path.)

Run with::

    PYTHONPATH=src python examples/backend_portability.py
"""

from __future__ import annotations

from repro.api import Experiment, apps


def main() -> None:
    experiment = Experiment.grid(
        apps=("wordcount_burst",),
        backends=("sim", "mp"),
        params={"workers": 3, "chunks": 30, "words_per_chunk": 10},
        seeds=(42,),
        until=300.0,
    )
    outcomes = {outcome.backend: outcome for outcome in experiment.run()}

    for backend, outcome in outcomes.items():
        master = outcome.final_states["master"]
        print(
            f"[{backend}] stopped: {outcome.stopped_reason} after "
            f"{outcome.events_executed} events"
        )
        print(
            f"[{backend}] aggregated {master['aggregated']}/30 chunks, "
            f"scroll recorded {outcome.scroll['entries']} actions"
        )
        if outcome.transport:
            transport = outcome.transport
            ratio = transport["messages_routed"] / max(1, transport["delivery_batches"])
            print(
                f"[{backend}] transport: {transport['messages_routed']} messages "
                f"in {transport['delivery_batches']} batched writes "
                f"({ratio:.1f} msgs/write, largest batch {transport['max_batch']})"
            )

    expected = apps.app("wordcount_burst").exports["expected_counts"](30, 10)
    sim_counts = outcomes["sim"].final_states["master"]["counts"]
    mp_counts = outcomes["mp"].final_states["master"]["counts"]
    assert sim_counts == mp_counts == expected
    assert experiment.passed
    print("parity: identical word counts on both substrates ✓")


if __name__ == "__main__":
    main()
