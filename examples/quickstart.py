"""Quickstart: attach FixD to a small distributed application.

The application is a two-process counter with a deliberate bug (it counts
past its declared bound).  FixD detects the invariant violation, rolls
the system back to a consistent checkpoint, investigates which execution
paths reach the bad state, produces a bug report, and — because we
register the programmer's patch — heals the running system in place so
the run finishes cleanly.

Run with::

    python examples/quickstart.py
"""

from repro import Cluster, ClusterConfig, FixD, Process, handler
from repro.dsim.process import invariant
from repro.healer.patch import generate_patch


class CounterV1(Process):
    """Two processes bounce a TICK message and count receipts — past the bound (bug)."""

    def on_start(self):
        self.state["count"] = 0
        if self.pid == "counter0":
            self.send("counter1", "TICK", None)

    @handler("TICK")
    def on_tick(self, msg):
        self.state["count"] += 1
        self.send(msg.src, "TICK", None)  # BUG: never stops

    @invariant("count-bounded")
    def count_bounded(self):
        return self.state["count"] <= 3


class CounterV2(CounterV1):
    """The fix: stop bouncing once the bound is reached."""

    @handler("TICK")
    def on_tick(self, msg):
        if self.state["count"] < 3:
            self.state["count"] += 1
            self.send(msg.src, "TICK", None)


def main() -> None:
    cluster = Cluster(ClusterConfig(seed=7))
    cluster.add_process("counter0", CounterV1)
    cluster.add_process("counter1", CounterV1)

    fixd = FixD()
    fixd.attach(cluster)
    fixd.register_patch(
        generate_patch(CounterV1, CounterV2, description="stop ticking at the bound")
    )

    result = cluster.run(max_events=200)

    print("run finished:", result.stopped_reason)
    print("final states:", result.process_states)
    print()
    print("FixD statistics:", fixd.stats())
    print()
    report = fixd.last_report
    if report is not None:
        print(report.bug_report.to_text())
        if report.heal is not None:
            print(report.heal.describe())
    print()
    print("Figure 8 capability matrix (derived from this implementation):")
    print(fixd.capability_matrix().render())


if __name__ == "__main__":
    main()
