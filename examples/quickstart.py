"""Quickstart: declarative FixD scenarios through the ``repro.api`` facade.

A scenario is *data*: which registered application to run, which faults
to inject (several compose into one schedule), and what the run must
establish.  Running one returns a structured outcome — detected,
reported, rolled back, consistent — and the scenario itself serializes
to JSON, so the fault schedule that broke a run is a shareable repro
artefact.  This file is the README's "Public API" walkthrough, verbatim.

Run with::

    PYTHONPATH=src python examples/quickstart.py
"""

from repro.api import Crash, Duplicate, Experiment, FaultSchedule, Partition, Scenario


def main() -> None:
    # One scenario: a backup replica crashes *while* the network is
    # partitioned, and must be back and consistent after both clear.
    scenario = Scenario(
        app="kvstore",
        name="replica-crash-during-partition",
        params={"replicas": 2, "clients": 1},
        faults=FaultSchedule.of(
            Partition(groups=(("replica0", "client0"), ("replica1",)), start=2.0, end=6.0),
            Crash(pid="replica1", at=3.0, recover_at=8.0),
        ),
        recovering=("replica1",),
    )
    outcome = Experiment([scenario]).run()[0]
    print(outcome.summary())
    assert outcome.passed and outcome.detected

    # Scenarios are data: this JSON is the whole repro artefact
    # (Scenario.from_json / load_suite bring it back to life).
    print(scenario.to_json())
    print()

    # A grid: three registry apps each face a duplicate storm, fanned
    # out over a process pool.  The registry knows each app's default
    # consistency check, so every cell is asserted end to end.
    experiment = Experiment.grid(
        apps=("bank", "token_ring", "wordcount"),
        faults=(FaultSchedule(), FaultSchedule.of(Duplicate(count=2))),
        processes=2,
    )
    experiment.run()
    print(experiment.describe())
    print("grid passed:", experiment.passed)


if __name__ == "__main__":
    main()
