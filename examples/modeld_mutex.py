"""Scenario: using ModelD directly (Figure 7) and the CMC-style checker.

The first half builds a small mutual-exclusion protocol with ModelD's
front-end DSL, checks it exhaustively with the back-end engine under
several search orders, and then *dynamically injects* a corrected action
(the Healer's mechanism) and re-checks.

The second half shows the CMC-style checker's generic properties on a
model that leaks simulated heap blocks along one execution path.

Run with::

    python examples/modeld_mutex.py
"""

from repro.api.modelcheck import (
    Action,
    CMCChecker,
    CMCConfig,
    ModelBuilder,
    ModelD,
    ModelDConfig,
    SearchOrder,
    SimulatedHeap,
)


def build_buggy_mutex() -> ModelBuilder:
    """A two-process lock with a faulty acquire guard (no mutual exclusion)."""
    builder = ModelBuilder("buggy-mutex")
    builder.variables(lock_held_by=None, a_in_cs=False, b_in_cs=False)

    @builder.action("a-acquire", guard=lambda s: not s["a_in_cs"])
    def a_acquire(state):
        # BUG: acquires regardless of whether B already holds the lock.
        return state.with_values(lock_held_by="a", a_in_cs=True)

    @builder.action("b-acquire", guard=lambda s: not s["b_in_cs"])
    def b_acquire(state):
        return state.with_values(lock_held_by="b", b_in_cs=True)

    @builder.action("a-release", guard=lambda s: s["a_in_cs"])
    def a_release(state):
        return state.with_values(lock_held_by=None, a_in_cs=False)

    @builder.action("b-release", guard=lambda s: s["b_in_cs"])
    def b_release(state):
        return state.with_values(lock_held_by=None, b_in_cs=False)

    builder.invariant("mutual-exclusion", lambda s: not (s["a_in_cs"] and s["b_in_cs"]))
    return builder


def demo_modeld() -> None:
    checker = ModelD.from_builder(build_buggy_mutex(), ModelDConfig(max_states=10_000))

    print("=== ModelD: exhaustive checking under different search orders ===")
    for order in (SearchOrder.BFS, SearchOrder.DFS, SearchOrder.RANDOM):
        result = checker.check(order)
        shortest = result.shortest_violation()
        print(
            f"{order.value:>8}: {result.states_explored} states, "
            f"{len(result.violations)} violating trail(s), "
            f"shortest counterexample: {shortest.length if shortest else '-'} steps"
        )
    print()
    print("shortest counterexample:")
    print(checker.check(SearchOrder.BFS).shortest_violation().describe())
    print()

    # Dynamic action injection: replace the faulty acquire with a guarded one.
    checker.inject_action(
        Action(
            name="a-acquire",
            effect=lambda s: s.with_values(lock_held_by="a", a_in_cs=True),
            guard=lambda s: not s["a_in_cs"] and s["lock_held_by"] is None,
        )
    )
    checker.inject_action(
        Action(
            name="b-acquire",
            effect=lambda s: s.with_values(lock_held_by="b", b_in_cs=True),
            guard=lambda s: not s["b_in_cs"] and s["lock_held_by"] is None,
        )
    )
    fixed = checker.check(SearchOrder.BFS)
    print(
        "after dynamically injecting the corrected acquire actions: "
        f"{len(fixed.violations)} violations in {fixed.states_explored} states"
    )
    print()


def demo_cmc() -> None:
    print("=== CMC-style checker: generic memory properties ===")
    builder = ModelBuilder("allocator")
    builder.variables(heap=SimulatedHeap(), request_served=False, done=False)

    @builder.action("serve-request", guard=lambda s: not s["request_served"])
    def serve(state):
        heap, block = state["heap"].malloc(64, tag="request-buffer")
        return state.with_values(heap=heap, request_served=True, last_block=block)

    @builder.action("finish-cleanly", guard=lambda s: s["request_served"] and not s["done"])
    def finish_cleanly(state):
        heap = state["heap"].free(state.get("last_block"))
        return state.with_values(heap=heap, done=True)

    @builder.action("finish-hastily", guard=lambda s: s["request_served"] and not s["done"])
    def finish_hastily(state):
        # BUG: forgets to free the request buffer.
        return state.with_values(done=True)

    builder.terminal(lambda s: s["done"])

    checker = CMCChecker(
        builder.build(),
        CMCConfig(max_states=1000),
        terminal_predicate=builder.terminal_predicate,
    )
    result = checker.check()
    print(
        f"explored {result.states_explored} states; generic properties violated: "
        f"{checker.found_property_violations(result)}"
    )
    for trail in result.violations:
        print(trail.describe())


if __name__ == "__main__":
    demo_modeld()
    demo_cmc()
