"""Scenario: a replicated key-value store with a latent replication bug.

The registry's ``"kvstore"`` app can run its backups as
``KVReplicaStale`` (forgets to bump a key's version on overwrite) under
an overwrite-heavy client workload — the bug only shows up once a client
rewrites a key, so a short run looks healthy.  Declared as a
``repro.api`` scenario, FixD:

1. records the whole run on the Scroll;
2. detects the ``overwrite-bumps-version`` invariant violation at a
   backup;
3. rolls the replicas back to a consistent recovery line;
4. runs the Investigator over the peers' *implementations* from the
   restored global checkpoint, returning the trails that reach the
   violation; and
5. replays the faulty process's recorded execution offline
   (liblog-style) to show the developer exactly what it did.

The deep dive (replay, global-invariant investigation) uses the live
:class:`~repro.api.ScenarioRun` handle that ``execute`` returns.

Run with::

    PYTHONPATH=src python examples/kvstore_fault_investigation.py
"""

from repro.api import FaultSchedule, Scenario, apps, execute
from repro.scroll.replayer import Replayer


def main() -> None:
    scenario = Scenario(
        app="kvstore",
        name="stale-version-investigation",
        params={"replicas": 3, "clients": 1, "stale_backups": True, "rewriting_clients": True},
        seed=21,
        max_events=1000,
        faults=FaultSchedule(),  # no injected faults: the bug is in the code
        expect_violation=True,
        investigate=True,
    )
    run = execute(scenario)
    print(run.outcome.summary())
    print("violations observed:", [(v["pid"], v["invariant"]) for v in run.outcome.violations])
    print()

    report = run.fixd.last_report
    if report is None:
        print("no fault detected — try a longer workload")
        return

    print(report.bug_report.to_text())

    # liblog-style offline replay of the faulty process from the Scroll.
    factories = run.replay_factories()
    replayer = Replayer(run.fixd.scroll, factories)
    replay, violating_pid = replayer.replay_until_violation()
    print("offline replay up to the first recorded violation:")
    print("  faulty process:", violating_pid)
    for pid, replay_outcome in sorted(replay.processes.items()):
        print(
            f"  {pid}: replayed {replay_outcome.events_replayed} events, "
            f"{replay_outcome.sends_replayed}/{replay_outcome.sends_recorded} sends reproduced, "
            f"diverged={replay_outcome.diverged}"
        )

    # The Investigator can also check a *global* invariant across replicas.
    replica_consistency = apps.app("kvstore").check("default")
    investigation = run.fixd.investigator.investigate(
        factories,
        checkpoint=report.protocol_run.global_checkpoint,
        global_invariants={"replica-consistency": replica_consistency},
    )
    print()
    print("global-invariant investigation:")
    print(investigation.summary())


if __name__ == "__main__":
    main()
