"""Scenario: a replicated key-value store with a latent replication bug.

The backup replicas run :class:`KVReplicaStale`, which forgets to bump a
key's version on overwrite.  The bug only shows up once a client rewrites
a key, so a short run looks healthy.  FixD:

1. records the whole run on the Scroll;
2. detects the ``overwrite-bumps-version`` invariant violation at a
   backup;
3. rolls the replicas back to a consistent recovery line;
4. runs the Investigator over the peers' *implementations* from the
   restored global checkpoint, returning the trails that reach the
   violation; and
5. replays the faulty process's recorded execution offline (liblog-style)
   to show the developer exactly what it did.

Run with::

    python examples/kvstore_fault_investigation.py
"""

from repro import Cluster, ClusterConfig, FixD
from repro.apps.kvstore import KVClient, KVReplica, KVReplicaStale, replica_consistency_invariant
from repro.core.fixd import FixDConfig
from repro.investigator.investigator import InvestigatorConfig
from repro.scroll.replayer import Replayer


class RewritingClient(KVClient):
    """A client whose workload rewrites the same key, exposing the stale-version bug."""

    operations = [
        ("put", "config", 1),
        ("get", "config", None),
        ("put", "config", 2),   # overwrite: the backup's version counter goes stale here
        ("put", "config", 3),
        ("get", "config", None),
    ]


def build_cluster() -> tuple:
    cluster = Cluster(ClusterConfig(seed=21))
    cluster.add_process("replica0", KVReplica)        # healthy primary
    cluster.add_process("replica1", KVReplicaStale)   # buggy backup
    cluster.add_process("replica2", KVReplicaStale)   # buggy backup
    cluster.add_process("client0", RewritingClient)
    return cluster


def main() -> None:
    cluster = build_cluster()
    fixd = FixD(FixDConfig(investigator=InvestigatorConfig(max_states=5000, max_depth=60)))
    fixd.attach(cluster)

    result = cluster.run(max_events=1000)
    print("run finished:", result.stopped_reason)
    print("violations observed:", [(v.pid, v.invariant) for v in result.violations])
    print()

    report = fixd.last_report
    if report is None:
        print("no fault detected — try a longer workload")
        return

    print(report.bug_report.to_text())

    # liblog-style offline replay of the faulty process from the Scroll.
    factories = {
        "replica0": KVReplica,
        "replica1": KVReplicaStale,
        "replica2": KVReplicaStale,
        "client0": RewritingClient,
    }
    replayer = Replayer(fixd.scroll, factories)
    replay, violating_pid = replayer.replay_until_violation()
    print("offline replay up to the first recorded violation:")
    print("  faulty process:", violating_pid)
    for pid, outcome in sorted(replay.processes.items()):
        print(
            f"  {pid}: replayed {outcome.events_replayed} events, "
            f"{outcome.sends_replayed}/{outcome.sends_recorded} sends reproduced, "
            f"diverged={outcome.diverged}"
        )

    # The Investigator can also check a *global* invariant across replicas.
    investigation = fixd.investigator.investigate(
        factories,
        checkpoint=report.protocol_run.global_checkpoint,
        global_invariants={"replica-consistency": replica_consistency_invariant},
    )
    print()
    print("global-invariant investigation:")
    print(investigation.summary())


if __name__ == "__main__":
    main()
