"""Durable checkpoints: crash an experiment, resume it from disk.

FixD's recovery lines normally live in process memory — a crashed run
loses them.  With ``checkpoint_store="disk"`` every *committed* line is
also flushed to a content-addressed blob store, so a new process can
pick the run back up:

* the run auto-commits a recovery line every 2 simulated seconds; each
  commit chunks the process states, writes only chunks whose SHA-256
  address is new (unchanged state costs ~nothing), and lands an atomic
  line manifest;
* we then *throw the Experiment away* — simulating the driving process
  dying — and ``Experiment.resume`` rebuilds a cluster from nothing but
  the run id and the store directory;
* the resumed cluster starts exactly at the last committed recovery
  line: same per-process state, same vector clocks, same RNG positions.

Run with::

    PYTHONPATH=src python examples/resume_after_crash.py
"""

from __future__ import annotations

import shutil
import tempfile

from repro.api import Experiment, Scenario


def main() -> None:
    store = tempfile.mkdtemp(prefix="repro-durable-store-")
    try:
        scenario = Scenario(
            app="kvstore",
            name="kv-durable-demo",
            params={"replicas": 2, "clients": 1},
            seed=11,
            until=6.0,
            auto_commit_interval=2.0,
            checkpoint_store="disk",
            store_path=store,
        )

        outcome = Experiment([scenario]).run()[0]
        stats = outcome.store
        print("original run committed durable recovery lines:")
        print(f"  lines committed : {stats['lines_committed']}")
        print(f"  chunks written  : {stats['chunks_written']}")
        print(
            f"  chunks reused   : {stats['chunks_reused']} "
            f"(+{stats['chunks_deduped']} deduped against disk)"
        )
        print(
            f"  bytes on disk   : {stats['bytes_on_disk']} "
            f"of {stats['logical_bytes']} logical "
            f"({stats['logical_bytes'] / max(1, stats['bytes_on_disk']):.1f}x dedup)"
        )

        # the Experiment object is gone now — only the store directory and
        # the scenario name survive the "crash"; the name resolves to this
        # execution's uniquely-suffixed run id (also in outcome.run_id)
        resumed = Experiment.resume("kv-durable-demo", store)
        print(
            f"\nresumed run {resumed.run_id!r} from committed line "
            f"{resumed.line_index} ({resumed.manifest['label']!r}):"
        )
        for pid in sorted(resumed.checkpoints):
            checkpoint = resumed.checkpoints[pid]
            live = dict(resumed.cluster.process(pid).state)
            match = "ok" if live == dict(checkpoint.state) else "MISMATCH"
            print(
                f"  {pid:<10} seq={checkpoint.sequence:<3} "
                f"t={checkpoint.time:<5.2f} state-restored={match}"
            )

        assert all(
            dict(resumed.cluster.process(pid).state) == dict(cp.state)
            for pid, cp in resumed.checkpoints.items()
        ), "resumed cluster state must equal the committed recovery line"
        print("\nresume restored the last committed recovery line exactly.")
    finally:
        shutil.rmtree(store, ignore_errors=True)


if __name__ == "__main__":
    main()
