"""Durable checkpoints: crash an experiment, resume it, finish the run.

FixD's recovery lines normally live in process memory — a crashed run
loses them.  With ``checkpoint_store="disk"`` every *committed* line is
flushed to a content-addressed blob store, and the Scroll window it
makes reachable (plus the scheduler's in-flight events) is persisted
alongside it, so a brand-new process can not only restore the run but
**continue** it:

* the run auto-commits a recovery line every 2 simulated seconds; each
  commit chunks the process states, writes only chunks whose SHA-256
  address is new, lands an atomic line manifest, and flushes the
  recorded nondeterminism since the previous flush as one segment blob;
* we then *throw the Experiment away* — simulating the driving process
  dying mid-run — and ``Experiment.resume`` rebuilds a cluster from
  nothing but the run id and the store directory, restores the last
  committed line, and **replays the persisted Scroll forward** so every
  process sits at the crash point (state, vector clocks, RNG position);
* ``ResumedRun.continue_run`` re-attaches FixD, re-injects the
  persisted in-flight deliveries and timers, re-arms the remaining
  fault schedule, and runs to the scenario's horizon — landing on the
  same application state as an uninterrupted twin of the run.

Run with::

    PYTHONPATH=src python examples/resume_after_crash.py
"""

from __future__ import annotations

import shutil
import tempfile

from repro.api import Experiment, Scenario


def kv_scenario(store: str, until: float) -> Scenario:
    return Scenario(
        app="kvstore",
        name="kv-durable-demo",
        params={"replicas": 2, "clients": 1},
        seed=11,
        until=until,
        auto_commit_interval=2.0,
        checkpoint_store="disk",
        store_path=store,
    )


def main() -> None:
    twin_store = tempfile.mkdtemp(prefix="repro-durable-twin-")
    crash_store = tempfile.mkdtemp(prefix="repro-durable-store-")
    try:
        # the uninterrupted twin: same scenario, run straight to the horizon
        twin = Experiment([kv_scenario(twin_store, until=8.0)]).run()[0]

        # the victim: the driving process "dies" at t=4.0, mid-run
        crashed = Experiment([kv_scenario(crash_store, until=4.0)]).run()[0]
        stats = crashed.store
        print("crashed run committed durable recovery lines before dying:")
        print(f"  lines committed : {stats['lines_committed']}")
        print(f"  chunks written  : {stats['chunks_written']}")
        print(
            f"  scroll flushes  : {stats['scroll_flushes']} "
            f"({stats['scroll_bytes']} segment bytes)"
        )
        print(
            f"  bytes on disk   : {stats['bytes_on_disk']} "
            f"of {stats['logical_bytes']} logical state bytes"
        )

        # the Experiment object is gone now — only the store directory and
        # the scenario name survive the "crash"; the name resolves to this
        # execution's uniquely-suffixed run id (also in crashed.run_id)
        resumed = Experiment.resume("kv-durable-demo", crash_store)
        print(
            f"\nresumed run {resumed.run_id!r} from committed line "
            f"{resumed.line_index} ({resumed.manifest['label']!r}):"
        )
        for pid in sorted(resumed.checkpoints):
            replay = (resumed.replays or {}).get(pid)
            if replay is None:
                print(f"  {pid:<10} restored at the committed line (no stamp)")
                continue
            print(
                f"  {pid:<10} replayed {replay.events_replayed} recorded "
                f"event(s) forward to t={replay.last_time:.2f} "
                f"({'clean' if replay.ok else 'DIVERGED'})"
            )
        assert resumed.replays and all(r.ok for r in resumed.replays.values())

        # continue to the same horizon the twin ran to
        continued = resumed.continue_run(until=8.0)
        print(
            f"\ncontinued to t={continued.final_time:.1f}: "
            f"consistent={continued.consistent}, "
            f"stopped={continued.stopped_reason}"
        )

        assert continued.state_projection() == twin.state_projection(), (
            "the continued run must land on the uninterrupted twin's state"
        )
        print(
            "crash + resume + continue reached the exact application state "
            "of the uninterrupted twin."
        )
    finally:
        shutil.rmtree(twin_store, ignore_errors=True)
        shutil.rmtree(crash_store, ignore_errors=True)


if __name__ == "__main__":
    main()
